// Package ondie layers on-die ECC onto the raw DRAM substrate, reproducing
// the system model of the paper's Figure 2: the system writes k-bit
// datawords; the chip internally encodes them into n-bit codewords, stores
// them in cells (including hidden parity cells), and silently corrects on
// read using an ECC function the system cannot observe.
//
// The package simulates chips from three manufacturers, A, B and C, matching
// what the paper measures on 80 real LPDDR4 chips (§5.1):
//
//   - Each manufacturer uses a different secret ECC function; chips of the
//     same manufacturer and model use the same function (§5.1.3).
//   - Manufacturers A and B use exclusively true-cells; manufacturer C uses
//     50/50 true-/anti-cells in alternating blocks of 800/824/1224 rows
//     (§5.1.1).
//   - Each contiguous 32B region of the address space holds two 16B ECC
//     datawords interleaved at byte granularity (§5.1.2). For simulated
//     chips with other dataword lengths the same two-way byte interleaving
//     applies to the correspondingly-sized region.
//
// Methods prefixed with GroundTruth expose the chip's hidden internals for
// validation only; the BEER implementation (internal/core) never calls them.
//
// Entry points: New/MustNew build a Chip from a Config (facade:
// repro.SimulatedChip / repro.SimulatedChips); the Chip satisfies
// core.Chip, which is the entire surface BEER may touch. Invariant: chips
// with equal Config (including Seed) are byte-identical forever, and chips
// differing only in Seed share the manufacturer's secret ECC function while
// drawing independent cells — what makes §6.3 multi-chip merging sound.
package ondie

import (
	"fmt"
	mathbits "math/bits"
	"math/rand/v2"
	"time"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/gf2"
)

// Manufacturer identifies one of the simulated DRAM vendors.
type Manufacturer string

const (
	// MfrA uses an unstructured (randomly organized) parity-check matrix and
	// all true-cells.
	MfrA Manufacturer = "A"
	// MfrB uses a regularly structured parity-check matrix (sequential
	// syndrome order) and all true-cells.
	MfrB Manufacturer = "B"
	// MfrC uses a low-weight-first syndrome order (minimal XOR gate count)
	// and alternating true-/anti-cell blocks.
	MfrC Manufacturer = "C"
)

// Config describes a simulated on-die-ECC chip.
type Config struct {
	Manufacturer Manufacturer
	// DataBits is the ECC dataword length k; must be a positive multiple
	// of 8. The paper's chips use 128.
	DataBits int
	Banks    int
	Rows     int
	// RegionsPerRow is the number of two-word interleaved regions per row;
	// each region holds 2*DataBits/8 visible bytes.
	RegionsPerRow int
	Seed          uint64
	// Retention overrides the substrate retention model when non-zero.
	Retention dram.RetentionModel
	// TransientBER is passed through to the substrate (see dram.Config).
	TransientBER float64
	// Code overrides the manufacturer's secret ECC function (testing only).
	Code *ecc.Code
	// ScalarECC routes WriteRow/ReadRow through the scalar per-word
	// Encode/Decode reference path instead of the bitsliced batch codec
	// (testing only: determinism tests hold the two paths byte-identical).
	ScalarECC bool
}

// DefaultConfig returns a chip configuration comparable to the paper's
// devices but sized for simulation: k=128 datawords, one bank, and enough
// rows that manufacturer C's alternating cell blocks appear.
func DefaultConfig(m Manufacturer) Config {
	return Config{
		Manufacturer:  m,
		DataBits:      128,
		Banks:         1,
		Rows:          2048,
		RegionsPerRow: 8,
		Seed:          1,
	}
}

// Chip is a DRAM chip with on-die ECC. The system-visible surface is
// WriteRow/ReadRow over data bytes plus refresh and temperature control;
// everything else about the ECC is hidden.
type Chip struct {
	cfg         Config
	sub         *dram.Chip
	code        *ecc.Code // the secret on-die ECC function
	wordsPerRow int
	dataBytes   int // bytes per dataword (k/8)
	// Bitsliced row scratch. A Chip is stateful and not safe for concurrent
	// use (each parallel shard owns its chips), so per-chip buffers make
	// row writes and reads allocation-free in the steady state.
	cells gf2.Vec // wordsPerRow * n substrate cells
	slab  gf2.Slab
}

// New constructs a simulated chip.
func New(cfg Config) (*Chip, error) {
	if cfg.DataBits <= 0 || cfg.DataBits%8 != 0 {
		return nil, fmt.Errorf("ondie: DataBits must be a positive multiple of 8, got %d", cfg.DataBits)
	}
	if cfg.Banks <= 0 || cfg.Rows <= 0 || cfg.RegionsPerRow <= 0 {
		return nil, fmt.Errorf("ondie: invalid geometry %d/%d/%d", cfg.Banks, cfg.Rows, cfg.RegionsPerRow)
	}
	code := cfg.Code
	if code == nil {
		code = secretCode(cfg.Manufacturer, cfg.DataBits, cfg.Seed)
	}
	if code.K() != cfg.DataBits {
		return nil, fmt.Errorf("ondie: code has k=%d, config wants %d", code.K(), cfg.DataBits)
	}
	c := &Chip{
		cfg:         cfg,
		code:        code,
		wordsPerRow: 2 * cfg.RegionsPerRow,
		dataBytes:   cfg.DataBits / 8,
	}
	c.cells = gf2.NewVec(c.wordsPerRow * code.N())
	c.sub = dram.New(dram.Config{
		Banks:        cfg.Banks,
		Rows:         cfg.Rows,
		CellsPerRow:  c.wordsPerRow * code.N(),
		Seed:         cfg.Seed,
		Layout:       cellLayout(cfg.Manufacturer, cfg.Rows),
		Retention:    cfg.Retention,
		TransientBER: cfg.TransientBER,
	})
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Chip {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// secretCode picks the manufacturer's ECC function. The same manufacturer,
// dataword length and model seed always produce the same function, matching
// the paper's observation that same-model chips share an ECC function.
func secretCode(m Manufacturer, k int, seed uint64) *ecc.Code {
	switch m {
	case MfrB:
		return ecc.SequentialHamming(k)
	case MfrC:
		return ecc.LowWeightHamming(k)
	default: // MfrA and unknown strings: unstructured
		rng := rand.New(rand.NewPCG(0xA11CE, uint64(k)*2654435761))
		return ecc.RandomHamming(k, rng)
	}
}

// cellLayout returns the substrate cell layout for a manufacturer. For
// manufacturer C the paper's block lengths are used when the chip has enough
// rows; smaller simulated chips scale the blocks proportionally so both cell
// types still appear.
func cellLayout(m Manufacturer, rows int) dram.Layout {
	if m != MfrC {
		return dram.AllTrueLayout
	}
	paper := []int{800, 824, 1224}
	total := 800 + 824 + 1224
	if rows >= total {
		return dram.BlockLayout(paper...)
	}
	scaled := make([]int, len(paper))
	for i, l := range paper {
		s := l * rows / total
		if s < 1 {
			s = 1
		}
		scaled[i] = s
	}
	return dram.BlockLayout(scaled...)
}

// Banks returns the number of banks.
func (c *Chip) Banks() int { return c.cfg.Banks }

// Rows returns rows per bank.
func (c *Chip) Rows() int { return c.cfg.Rows }

// DataBytesPerRow returns the system-visible bytes stored in each row.
func (c *Chip) DataBytesPerRow() int { return c.wordsPerRow * c.dataBytes }

// RegionBytes returns the size of one interleaved two-word region (the
// paper's 32B granularity for 16B words).
func (c *Chip) RegionBytes() int { return 2 * c.dataBytes }

// LayoutKey implements core's LayoutKeyer extension for discovery caching:
// two freshly-constructed chips with equal keys are bit-identical, so one
// chip's discovered layout stands for every chip sharing the key. A chip
// built with an injected Code override reports no key (opting out of the
// cache) — the override is not captured by the config's value fields.
func (c *Chip) LayoutKey() string {
	if c.cfg.Code != nil {
		return ""
	}
	return fmt.Sprintf("ondie|%s|k=%d|b=%d|r=%d|rpr=%d|seed=%d|ret=%+v|tber=%g|scalar=%t",
		c.cfg.Manufacturer, c.cfg.DataBits, c.cfg.Banks, c.cfg.Rows, c.cfg.RegionsPerRow,
		c.cfg.Seed, c.cfg.Retention, c.cfg.TransientBER, c.cfg.ScalarECC)
}

// SetTemperature sets the ambient temperature for retention behavior.
func (c *Chip) SetTemperature(celsius float64) { c.sub.SetTemperature(celsius) }

// PauseRefresh disables refresh for the given duration, letting charged
// cells decay (the paper's mechanism for inducing uncorrectable errors).
func (c *Chip) PauseRefresh(d time.Duration) { c.sub.PauseRefresh(d) }

// wordBit maps (word, bit-in-codeword) to the substrate cell index.
func (c *Chip) wordBit(word, bit int) int { return word*c.code.N() + bit }

// WriteRow encodes and stores a full row of data bytes.
// len(data) must equal DataBytesPerRow.
//
// The row's words are encoded through the bitsliced batch codec, up to 64
// words per chunk, into a per-chip cell buffer — no allocation per write.
func (c *Chip) WriteRow(bank, row int, data []byte) {
	if len(data) != c.DataBytesPerRow() {
		panic(fmt.Sprintf("ondie: WriteRow got %d bytes, want %d", len(data), c.DataBytesPerRow()))
	}
	if c.cfg.ScalarECC {
		c.writeRowScalar(bank, row, data)
		return
	}
	n, k := c.code.N(), c.code.K()
	bc := c.code.Bitsliced()
	cellw := c.cells.Words()
	for i := range cellw {
		cellw[i] = 0
	}
	c.slab.Reset()
	for w0 := 0; w0 < c.wordsPerRow; w0 += 64 {
		lanes := c.wordsPerRow - w0
		if lanes > 64 {
			lanes = 64
		}
		db := c.slab.Alloc(k, lanes)
		cb := c.slab.Alloc(n, lanes)
		dw := db.Words()
		for lane := 0; lane < lanes; lane++ {
			w := w0 + lane
			base := (w / 2) * c.RegionBytes()
			phase := w % 2
			lb := uint64(1) << uint(lane)
			for b := 0; b < c.dataBytes; b++ {
				by := data[base+2*b+phase]
				for bit := 0; by != 0; bit, by = bit+1, by>>1 {
					if by&1 == 1 {
						dw[8*b+bit] |= lb
					}
				}
			}
		}
		bc.Encode(db, cb)
		for bit, rw := range cb.Words() {
			for m := rw; m != 0; m &= m - 1 {
				lane := mathbits.TrailingZeros64(m)
				cell := c.wordBit(w0+lane, bit)
				cellw[cell>>6] |= 1 << (uint(cell) & 63)
			}
		}
	}
	c.sub.WriteRow(bank, row, c.cells)
}

// writeRowScalar is the per-word reference path behind Config.ScalarECC.
func (c *Chip) writeRowScalar(bank, row int, data []byte) {
	cells := gf2.NewVec(c.wordsPerRow * c.code.N())
	for w := 0; w < c.wordsPerRow; w++ {
		d := c.datawordOf(data, w)
		cw := c.code.Encode(d)
		for bit := 0; bit < c.code.N(); bit++ {
			if cw.Get(bit) {
				cells.Set(c.wordBit(w, bit), true)
			}
		}
	}
	c.sub.WriteRow(bank, row, cells)
}

// ReadRow reads, ECC-decodes, and de-interleaves a full row. Decoding runs
// through the bitsliced batch codec over a per-chip cell buffer; only the
// returned byte slice is allocated. Collection loops that read millions of
// rows should use ReadRowInto with a reused buffer instead.
func (c *Chip) ReadRow(bank, row int) []byte {
	return c.ReadRowInto(bank, row, make([]byte, c.DataBytesPerRow()))
}

// ReadRowInto is ReadRow writing into caller-owned storage: data must have
// length DataBytesPerRow, is fully overwritten, and is returned. With a
// reused buffer the bitsliced read path allocates nothing in steady state.
func (c *Chip) ReadRowInto(bank, row int, data []byte) []byte {
	if len(data) != c.DataBytesPerRow() {
		panic(fmt.Sprintf("ondie: ReadRowInto buffer length %d, row holds %d bytes",
			len(data), c.DataBytesPerRow()))
	}
	if c.cfg.ScalarECC {
		copy(data, c.readRowScalar(bank, row))
		return data
	}
	n, r := c.code.N(), c.code.ParityBits()
	bc := c.code.Bitsliced()
	cells := c.sub.ReadRowInto(bank, row, c.cells)
	cellw := cells.Words()
	c.slab.Reset()
	for w0 := 0; w0 < c.wordsPerRow; w0 += 64 {
		lanes := c.wordsPerRow - w0
		if lanes > 64 {
			lanes = 64
		}
		cb := c.slab.Alloc(n, lanes)
		sb := c.slab.Alloc(r, lanes)
		cbw := cb.Words()
		for bit := 0; bit < n; bit++ {
			var rw uint64
			for lane := 0; lane < lanes; lane++ {
				cell := c.wordBit(w0+lane, bit)
				rw |= (cellw[cell>>6] >> (uint(cell) & 63) & 1) << uint(lane)
			}
			cbw[bit] = rw
		}
		bc.Syndrome(cb, sb)
		bc.Decode(cb, sb, nil)
		for lane := 0; lane < lanes; lane++ {
			w := w0 + lane
			base := (w / 2) * c.RegionBytes()
			phase := w % 2
			for b := 0; b < c.dataBytes; b++ {
				var by byte
				for bit := 0; bit < 8; bit++ {
					by |= byte(cbw[8*b+bit]>>uint(lane)&1) << uint(bit)
				}
				data[base+2*b+phase] = by
			}
		}
	}
	return data
}

// readRowScalar is the per-word reference path behind Config.ScalarECC.
func (c *Chip) readRowScalar(bank, row int) []byte {
	cells := c.sub.ReadRow(bank, row)
	data := make([]byte, c.DataBytesPerRow())
	for w := 0; w < c.wordsPerRow; w++ {
		cw := cells.Slice(w*c.code.N(), (w+1)*c.code.N())
		res := c.code.Decode(cw)
		c.storeDataword(data, w, res.Data)
	}
	return data
}

// datawordOf extracts word w's dataword bits from a row's data bytes,
// applying the two-way byte interleaving: region byte i belongs to word
// (i % 2), byte (i / 2).
func (c *Chip) datawordOf(data []byte, w int) gf2.Vec {
	d := gf2.NewVec(c.cfg.DataBits)
	region := w / 2
	phase := w % 2
	base := region * c.RegionBytes()
	for b := 0; b < c.dataBytes; b++ {
		by := data[base+2*b+phase]
		for bit := 0; bit < 8; bit++ {
			if by>>uint(bit)&1 == 1 {
				d.Set(8*b+bit, true)
			}
		}
	}
	return d
}

// storeDataword writes word w's dataword bits back into the row bytes.
func (c *Chip) storeDataword(data []byte, w int, d gf2.Vec) {
	region := w / 2
	phase := w % 2
	base := region * c.RegionBytes()
	for b := 0; b < c.dataBytes; b++ {
		var by byte
		for bit := 0; bit < 8; bit++ {
			if d.Get(8*b + bit) {
				by |= 1 << uint(bit)
			}
		}
		data[base+2*b+phase] = by
	}
}

// WordsPerRow returns the number of ECC words stored in each row.
func (c *Chip) WordsPerRow() int { return c.wordsPerRow }

// GroundTruthCode returns the chip's secret ECC function. Validation only:
// in a real chip this is exactly the information BEER exists to recover.
func (c *Chip) GroundTruthCode() *ecc.Code { return c.code }

// GroundTruthCellType returns the actual cell type of a row. Validation
// only; the BEER flow rediscovers this via §5.1.1.
func (c *Chip) GroundTruthCellType(bank, row int) dram.CellType {
	return c.sub.CellTypeOf(bank, row)
}

// GroundTruthWordOfRegionByte returns (word, byteInWord) for a region byte
// offset. Validation only; the BEER flow rediscovers the layout via §5.1.2.
func (c *Chip) GroundTruthWordOfRegionByte(offset int) (word, byteInWord int) {
	return offset % 2, offset / 2
}

// GroundTruthWeakCells returns the codeword bit positions within one ECC
// word whose cells decay within the given refresh pause (at the retention
// model's reference temperature). Validation only: this is exactly what BEEP
// recovers through the data interface.
func (c *Chip) GroundTruthWeakCells(bank, row, word int, window time.Duration) []int {
	var weak []int
	for bit := 0; bit < c.code.N(); bit++ {
		cell := c.wordBit(word, bit)
		if c.sub.RetentionSecondsOf(bank, row, cell) < window.Seconds() {
			weak = append(weak, bit)
		}
	}
	return weak
}
