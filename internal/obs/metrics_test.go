package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only grow
	g.Set(2.5)
	g.Add(-1)

	text := render(t, r)
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("own output fails validation: %v\n%s", err, text)
	}
	if got := fams["test_ops_total"].Samples[0].Value; got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
	if fams["test_ops_total"].Type != "counter" {
		t.Errorf("type = %s, want counter", fams["test_ops_total"].Type)
	}
	if got := fams["test_depth"].Samples[0].Value; got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	text := render(t, r)
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("validation: %v\n%s", err, text)
	}
	want := map[string]float64{"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
	for _, s := range fams["test_seconds"].Samples {
		if s.Name == "test_seconds_bucket" {
			le := s.Labels["le"]
			if s.Value != want[le] {
				t.Errorf("bucket le=%s = %v, want %v", le, s.Value, want[le])
			}
		}
		if s.Name == "test_seconds_count" && s.Value != 5 {
			t.Errorf("count = %v, want 5", s.Value)
		}
		if s.Name == "test_seconds_sum" && math.Abs(s.Value-56.05) > 1e-9 {
			t.Errorf("sum = %v, want 56.05", s.Value)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestVecsAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_jobs_total", "Jobs.", "type", "state")
	cv.With("recover", "succeeded").Add(3)
	cv.With(`we"ird\val`+"\n", "failed").Inc()
	hv := r.HistogramVec("test_stage_seconds", "Stage latency.", []float64{1}, "stage")
	hv.With("collect").Observe(0.5)
	hv.With("solve").Observe(2)

	text := render(t, r)
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("validation: %v\n%s", err, text)
	}
	var found bool
	for _, s := range fams["test_jobs_total"].Samples {
		if s.Labels["type"] == `we"ird\val`+"\n" && s.Labels["state"] == "failed" {
			found = true
			if s.Value != 1 {
				t.Errorf("escaped child = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip:\n%s", text)
	}
	if n := len(fams["test_stage_seconds"].Samples); n != 2*4 {
		t.Errorf("histogram vec samples = %d, want 8 (2 children x bucket+Inf+sum+count)", n)
	}
}

func TestFuncCollectorsAndHandler(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("test_live", "Live.", func() float64 { return v })
	r.CounterFunc("test_seen_total", "Seen.", func() float64 { return 42 })

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if _, err := CheckFamilies(sb.String(), "test_live", "test_seen_total"); err != nil {
		t.Fatalf("scrape invalid: %v", err)
	}
}

func TestRegistryRejectsBadAndDuplicateNames(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r.Counter("test_dup_total", "x")
	mustPanic("duplicate", func() { r.Counter("test_dup_total", "x") })
	mustPanic("bad name", func() { r.Counter("9leading_digit", "x") })
	mustPanic("bad char", func() { r.Counter("has-dash", "x") })
	mustPanic("bad label", func() { r.CounterVec("test_ok_total", "x", "bad-label") })
	mustPanic("bad buckets", func() { r.Histogram("test_h", "x", []float64{1, 1}) })
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "x")
	h := r.Histogram("test_lat", "x", nil)
	g := r.Gauge("test_g", "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if _, err := ParseExposition(render(t, r)); err != nil {
		t.Fatalf("validation after contention: %v", err)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric_no_value\n",
		"bad-name 1\n",
		`m{l="unterminated} 1` + "\n",
		"m 1 2 3\n",
		"# TYPE m sometype\nm 1\n",
		"m 1\n# TYPE m counter\n",
		// Histogram whose buckets decrease.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n",
		// Histogram missing +Inf.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n",
		// +Inf bucket disagrees with _count.
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\nh_sum 1\n",
	}
	for _, text := range bad {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("accepted malformed exposition:\n%s", text)
		}
	}
	good := "# HELP m total ops\n# TYPE m counter\nm{a=\"b\"} 1\nm{a=\"c\"} 2\n"
	if _, err := ParseExposition(good); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}
