package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family from an exposition document.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []Sample
}

// Sample is one exposition sample line.
type Sample struct {
	Name   string            // full sample name including _bucket/_sum/_count suffixes
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// ParseExposition parses and validates a Prometheus text-format document,
// returning the families keyed by name. It enforces the grammar the smoke
// suites and golden tests gate on: metric/label name character sets, HELP
// and TYPE appearing at most once and before any sample of their family,
// parseable sample values, and — for histograms — cumulative
// non-decreasing buckets whose +Inf bucket equals _count. A family with
// metadata but zero samples is legal (a labeled family before first use).
func ParseExposition(text string) (map[string]*Family, error) {
	families := make(map[string]*Family)
	// sampled tracks families that have emitted at least one sample, to
	// reject metadata appearing after samples.
	sampled := make(map[string]bool)

	get := func(name string) *Family {
		f, ok := families[name]
		if !ok {
			f = &Family{Name: name, Type: "untyped"}
			families[name] = f
		}
		return f
	}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				name := fields[2]
				if !metricNameOK(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
				}
				f := get(name)
				if sampled[name] {
					return nil, fmt.Errorf("line %d: HELP for %s after its samples", lineNo, name)
				}
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				} else {
					f.Help = " " // present but empty
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !metricNameOK(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
				}
				f := get(name)
				if sampled[name] {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = typ
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := familyOf(s.Name, families)
		f := get(famName)
		f.Samples = append(f.Samples, s)
		sampled[famName] = true
	}

	for _, f := range families {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", f.Name, err)
			}
		}
	}
	return families, nil
}

// familyOf maps a sample name to its family: histogram/summary samples use
// the base name's _bucket/_sum/_count suffixes.
func familyOf(sample string, families map[string]*Family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return sample
}

// parseSample parses `name{labels} value` (timestamps are not produced by
// the registry and are rejected).
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !metricNameOK(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("expected exactly one value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", rest)
		}
		name := rest[:eq]
		if !labelNameOK(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		rest = strings.TrimPrefix(rest, ",")
	}
	return labels, nil
}

// checkHistogram verifies the cumulative-bucket invariants for every label
// combination of a histogram family.
func checkHistogram(f *Family) error {
	// Group buckets/sums/counts by their non-le label signature.
	type series struct {
		bounds []float64
		counts map[float64]float64
		count  float64
		hasCnt bool
	}
	groups := make(map[string]*series)
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		return b.String()
	}
	getSeries := func(labels map[string]string) *series {
		k := sig(labels)
		g, ok := groups[k]
		if !ok {
			g = &series{counts: make(map[float64]float64)}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("unparseable le %q", le)
				}
				bound = v
			}
			g := getSeries(s.Labels)
			g.bounds = append(g.bounds, bound)
			g.counts[bound] = s.Value
		case f.Name + "_count":
			g := getSeries(s.Labels)
			g.count = s.Value
			g.hasCnt = true
		case f.Name + "_sum":
			// value can be any float; nothing to check beyond parseability
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for sig, g := range groups {
		if len(g.bounds) == 0 && !g.hasCnt {
			continue
		}
		sort.Float64s(g.bounds)
		if len(g.bounds) == 0 || !math.IsInf(g.bounds[len(g.bounds)-1], 1) {
			return fmt.Errorf("series {%s} missing +Inf bucket", sig)
		}
		prev := math.Inf(-1)
		last := 0.0
		for _, bound := range g.bounds {
			if bound == prev {
				return fmt.Errorf("series {%s} duplicate bucket le=%v", sig, bound)
			}
			prev = bound
			c := g.counts[bound]
			if c < last {
				return fmt.Errorf("series {%s} bucket counts not cumulative at le=%v", sig, bound)
			}
			last = c
		}
		if g.hasCnt && g.counts[math.Inf(1)] != g.count {
			return fmt.Errorf("series {%s} +Inf bucket %v != _count %v", sig, g.counts[math.Inf(1)], g.count)
		}
	}
	return nil
}

// CheckFamilies parses text and verifies every name in want is present —
// the shared assertion behind the golden test and both smoke suites'
// /metrics scrapes. Returns the parsed families for further checks.
func CheckFamilies(text string, want ...string) (map[string]*Family, error) {
	fams, err := ParseExposition(text)
	if err != nil {
		return nil, fmt.Errorf("malformed exposition: %w", err)
	}
	var missing []string
	for _, name := range want {
		if _, ok := fams[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("exposition missing key families: %s", strings.Join(missing, ", "))
	}
	return fams, nil
}
