package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartSpan(SpanContext{}, "root")
	h := root.Context().Traceparent()
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if sc != root.Context() {
		t.Errorf("round trip: got %+v, want %+v", sc, root.Context())
	}

	for _, bad := range []string{
		"",
		"00-xyz",
		"00-00000000000000000000000000000000-0000000000000000-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestSpanParentingAndRing(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartSpan(SpanContext{}, "root")
	child := tr.StartSpan(root.Context(), "child")
	if child.Context().Trace != root.Context().Trace {
		t.Errorf("child trace id differs from parent")
	}
	child.SetAttr("k", "v")
	child.SetError(errors.New("boom"))
	child.End()
	child.End() // idempotent
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "child" || spans[0].ParentID != root.Context().Span.String() {
		t.Errorf("child span misrecorded: %+v", spans[0])
	}
	if spans[0].Error != "boom" || spans[0].Attrs["k"] != "v" {
		t.Errorf("child attrs/error lost: %+v", spans[0])
	}

	// Overflow the ring: only the newest 4 survive.
	for i := 0; i < 10; i++ {
		tr.StartSpan(SpanContext{}, "filler").End()
	}
	spans = tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for _, s := range spans {
		if s.Name != "filler" {
			t.Errorf("old span survived overflow: %+v", s)
		}
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan(SpanContext{}, "x")
	if s != nil {
		t.Fatalf("nil tracer minted a span")
	}
	s.SetAttr("k", "v")
	s.SetError(errors.New("x"))
	s.End()
	if s.Context().Valid() {
		t.Errorf("nil span has valid context")
	}
	if tr.Spans() != nil {
		t.Errorf("nil tracer has spans")
	}
}

func TestTraceDumpHandler(t *testing.T) {
	tr := NewTracer(8)
	a := tr.StartSpan(SpanContext{}, "a")
	tr.StartSpan(a.Context(), "b").End()
	a.End()
	other := tr.StartSpan(SpanContext{}, "other")
	other.End()

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?trace_id=" + a.Context().Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dump.Recorded != 3 || dump.Capacity != 8 {
		t.Errorf("dump meta = %+v", dump)
	}
	if len(dump.Spans) != 2 {
		t.Fatalf("filtered spans = %d, want 2", len(dump.Spans))
	}
	// Newest first: "a" ended after "b".
	if dump.Spans[0].Name != "a" || dump.Spans[1].Name != "b" {
		t.Errorf("span order: %s, %s", dump.Spans[0].Name, dump.Spans[1].Name)
	}
}
