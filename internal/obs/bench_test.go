package obs

import (
	"runtime"
	"sync"
	"testing"
)

// BenchmarkMetricsHotPath measures instrumented events — a counter
// increment plus a histogram observation, the exact pattern the progress
// fold and solve-cache wrappers execute per core.Event — under
// GOMAXPROCS-way contention on shared instruments. Each iteration performs
// a fixed 200k events per worker so the bench runs long enough at the
// gate's -benchtime 1x for a 30% ns/op move to be a real regression, not
// timer noise. It is a bench-gate key (tools/benchjson), so
// instrumentation overhead is ratcheted by CI rather than assumed
// negligible.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_events_total", "x")
	h := r.Histogram("bench_latency_seconds", "x", nil)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 200_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perWorker; j++ {
					c.Inc()
					h.Observe(0.0003)
				}
			}()
		}
		wg.Wait()
	}
}
