package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// memStatsReader caches runtime.ReadMemStats snapshots briefly so one
// /metrics scrape reading several go_memstats_* gauges triggers a single
// stop-the-world read.
type memStatsReader struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memStatsReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > 250*time.Millisecond {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return m.stat
}

// registerRuntimeMetrics adds the Go runtime family every beerd role
// exports: goroutine count, heap usage and GC activity.
func registerRuntimeMetrics(r *Registry) {
	ms := &memStatsReader{}
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Heap bytes allocated and still in use.",
		func() float64 { return float64(ms.read().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(ms.read().HeapObjects) })
	r.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(ms.read().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time in seconds.",
		func() float64 { return float64(ms.read().PauseTotalNs) / 1e9 })
}

// DebugHandler is the mux served on the opt-in `beerd -debug-addr`
// listener: the full net/http/pprof suite plus this hub's /metrics and
// /debug/traces, so profiling and scraping never have to share the
// public API port.
func (h *Hub) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", h.Metrics.Handler())
	mux.Handle("/debug/traces", h.Tracer.Handler())
	return mux
}
