package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// statusWriter captures the response status for the request log and metrics
// while passing Flush through — SSE handlers downstream of the middleware
// need the http.Flusher of the underlying ResponseWriter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// quietPath reports request lines logged at Debug instead of Info: scrape
// and poll endpoints that fire several times a second and would drown the
// log at default level. Submissions, cancels, control-plane calls and
// every non-2xx response stay at Info.
func quietPath(method, path string) bool {
	if method != http.MethodGet {
		return false
	}
	switch path {
	case "/metrics", "/healthz", "/debug/traces":
		return true
	}
	// Status polls: GET /api/v1/jobs and GET /api/v1/jobs/{id}.
	if strings.HasPrefix(path, "/api/v1/jobs") && !strings.HasSuffix(path, "/result") {
		return true
	}
	// Worker heartbeats are POSTs; registry reads poll too.
	return strings.HasPrefix(path, "/cluster/")
}

// Middleware wraps an HTTP handler with the hub's request instrumentation:
// it parses an inbound traceparent header into the request context (so
// handlers can parent their spans on the caller's), logs a structured
// request line with the trace id, and counts requests and latency into
// beerd_http_requests_total / beerd_http_request_seconds.
func (h *Hub) Middleware(next http.Handler) http.Handler {
	requests := h.Metrics.CounterVec("beerd_http_requests_total",
		"HTTP requests served, by method and status class.", "method", "code")
	latency := h.Metrics.Histogram("beerd_http_request_seconds",
		"HTTP request latency in seconds.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sc, _ := ParseTraceparent(r.Header.Get(TraceparentHeader))
		if sc.Valid() {
			r = r.WithContext(ContextWithSpan(r.Context(), sc))
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		requests.With(r.Method, fmt.Sprintf("%dxx", status/100)).Inc()
		latency.Observe(elapsed.Seconds())

		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Duration("dur", elapsed),
		}
		if sc.Valid() {
			attrs = append(attrs, slog.String("trace_id", sc.Trace.String()))
		}
		level := slog.LevelInfo
		if quietPath(r.Method, r.URL.Path) && status < 400 {
			level = slog.LevelDebug
		}
		h.Log.LogAttrs(r.Context(), level, "http request", toAttrs(attrs)...)
	})
}

func toAttrs(kv []any) []slog.Attr {
	out := make([]slog.Attr, 0, len(kv))
	for _, a := range kv {
		if attr, ok := a.(slog.Attr); ok {
			out = append(out, attr)
		}
	}
	return out
}

// SSEWriter streams Server-Sent Events over an http.ResponseWriter,
// flushing after every event so clients see progress immediately.
type SSEWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// NewSSE prepares w for an event stream (headers + immediate flush). It
// fails when the ResponseWriter cannot stream (no http.Flusher).
func NewSSE(w http.ResponseWriter) (*SSEWriter, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &SSEWriter{w: w, f: f}, nil
}

// Event writes one event: `id:`, `event:`, a JSON-encoded `data:` line and
// the blank terminator, then flushes.
func (s *SSEWriter) Event(id int64, event string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, payload); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// Comment writes an SSE comment line — the keep-alive heartbeat clients
// ignore but proxies see as traffic.
func (s *SSEWriter) Comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}
