package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// TraceID identifies one end-to-end job trace; every span of the job — on
// the coordinator and on whichever workers execute or re-execute it —
// carries the same TraceID.
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated slice of a span: enough to parent a child
// span in another goroutine or another process.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both ids are nonzero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// TraceparentHeader is the HTTP header spans propagate through, following
// the W3C Trace Context format: 00-<32 hex trace-id>-<16 hex parent-id>-<2
// hex flags>.
const TraceparentHeader = "traceparent"

// Traceparent renders the context as a traceparent header value (sampled
// flag always set — the ring buffer keeps everything).
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", sc.Trace, sc.Span)
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except the reserved ff, and rejects all-zero ids per the spec.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, fmt.Errorf("traceparent too short: %q", h)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("malformed traceparent %q", h)
	}
	version := h[:2]
	if _, err := hex.DecodeString(version); err != nil || version == "ff" {
		return sc, fmt.Errorf("bad traceparent version %q", version)
	}
	if version == "00" && len(h) != 55 {
		return sc, fmt.Errorf("traceparent version 00 must be 55 chars, got %d", len(h))
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("bad trace-id in %q", h)
	}
	if _, err := hex.Decode(sc.Span[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("bad parent-id in %q", h)
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return SpanContext{}, fmt.Errorf("bad flags in %q", h)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("all-zero id in %q", h)
	}
	return sc, nil
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc, for in-process propagation
// (middleware → handler → submit).
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanContextFrom extracts the span context carried by ctx, if any.
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// SpanData is one finished span as stored in the ring buffer and dumped by
// GET /debug/traces.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Tracer mints spans and retains the most recent finished ones in a fixed
// ring buffer. A nil *Tracer is valid and discards everything, as is a nil
// *Span — callers never need nil checks.
type Tracer struct {
	mu      sync.Mutex
	buf     []SpanData
	next    int
	total   uint64
	dropped uint64
}

// NewTracer builds a tracer retaining up to capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]SpanData, 0, capacity)}
}

func randTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * i))
			id[8+i] = byte(lo >> (8 * i))
		}
	}
	return id
}

func randSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

// Span is one in-flight operation. Methods are nil-safe and (except End)
// must be called from one goroutine or externally synchronized.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	data   SpanData

	mu    sync.Mutex
	ended bool
	start time.Time
}

// StartSpan starts a span. A valid parent makes the new span its child
// (same TraceID); otherwise a fresh trace is minted. Nil tracers return a
// nil span, which absorbs all calls.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{Span: randSpanID()}
	parentID := ""
	if parent.Valid() {
		sc.Trace = parent.Trace
		parentID = parent.Span.String()
	} else {
		sc.Trace = randTraceID()
	}
	now := time.Now()
	return &Span{
		tracer: t,
		sc:     sc,
		start:  now,
		data: SpanData{
			TraceID:  sc.Trace.String(),
			SpanID:   sc.Span.String(),
			ParentID: parentID,
			Name:     name,
			Start:    now,
		},
	}
}

// Context returns the span's propagation context (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string)
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// SetError records err on the span (no-op for nil errors).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// End finishes the span and commits it to the tracer's ring buffer.
// Idempotent: only the first End records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	data := s.data
	if data.Attrs != nil {
		attrs := make(map[string]string, len(data.Attrs))
		for k, v := range data.Attrs {
			attrs[k] = v
		}
		data.Attrs = attrs
	}
	s.mu.Unlock()
	s.tracer.record(data)
}

func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, d)
		return
	}
	t.buf[t.next] = d
	t.next = (t.next + 1) % len(t.buf)
	t.dropped++
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// TraceDump is the GET /debug/traces response body.
type TraceDump struct {
	Capacity int        `json:"capacity"`
	Recorded uint64     `json:"recorded"`
	Dropped  uint64     `json:"dropped"`
	Spans    []SpanData `json:"spans"` // newest first
}

// Handler serves GET /debug/traces: a JSON dump of the span ring buffer,
// newest span first. `?trace_id=<32 hex>` filters to one trace.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Spans()
		// Reverse: newest first reads best when debugging the recent past.
		for i, j := 0, len(spans)-1; i < j; i, j = i+1, j-1 {
			spans[i], spans[j] = spans[j], spans[i]
		}
		if want := r.URL.Query().Get("trace_id"); want != "" {
			filtered := spans[:0]
			for _, s := range spans {
				if s.TraceID == want {
					filtered = append(filtered, s)
				}
			}
			spans = filtered
		}
		t.mu.Lock()
		dump := TraceDump{Capacity: cap(t.buf), Recorded: t.total, Dropped: t.dropped, Spans: spans}
		t.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump)
	})
}
