package obs

import (
	"fmt"
	"math/bits"
	"sync"
)

// This file implements the HDR-style latency histogram behind serving
// benchmarks (cmd/beerload). The Prometheus Histogram in metrics.go has a
// fixed handful of buckets chosen for exposition; a load generator needs
// tail quantiles (p99 of a distribution spanning sub-millisecond cache hits
// and multi-second cold solves) with bounded relative error and without
// picking bucket boundaries up front. HDR keeps one counter per log-linear
// bucket — every power of two is split into hdrSubCount linear sub-buckets —
// so any recorded value lands in a bucket whose width is at most
// 1/hdrSubCount (≈3%) of its magnitude, over the full int64 range, in a few
// kilobytes.

const (
	// hdrSubBits sets the linear resolution inside each octave:
	// 2^hdrSubBits sub-buckets, so quantiles are exact below hdrSubCount
	// and within ~2/hdrSubCount relative error above it.
	hdrSubBits  = 6
	hdrSubCount = 1 << hdrSubBits // 64
	// hdrHalf is the number of distinct sub-buckets an octave above the
	// linear range actually uses (the top half of the sub-bucket index
	// space; the bottom half belongs to smaller octaves).
	hdrHalf = hdrSubCount / 2
	// hdrBuckets covers values up to 2^63-1: the linear range plus
	// hdrHalf buckets for each of the (64 - hdrSubBits) remaining octaves.
	hdrBuckets = hdrSubCount + (64-hdrSubBits)*hdrHalf
)

// HDR is a high-dynamic-range histogram of non-negative int64 values
// (typically latencies in microseconds). Values are bucketed log-linearly
// with ~3% worst-case relative error, so Quantile answers p50/p95/p99
// without pre-chosen boundaries. All methods are safe for concurrent use;
// Record is a mutex-guarded counter bump, cheap enough for a load
// generator's per-request path.
type HDR struct {
	mu     sync.Mutex
	counts [hdrBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// NewHDR returns an empty histogram.
func NewHDR() *HDR { return &HDR{min: -1} }

// hdrIndex maps a value to its bucket. Values < hdrSubCount are exact;
// a value in octave e ≥ 1 (2^(hdrSubBits+e-1) ≤ v < 2^(hdrSubBits+e))
// shares a bucket with the other values equal in their top hdrSubBits bits.
func hdrIndex(v int64) int {
	u := uint64(v)
	if u < hdrSubCount {
		return int(u)
	}
	e := bits.Len64(u) - hdrSubBits // octave, ≥ 1
	sub := int(u>>uint(e)) - hdrHalf
	return hdrSubCount + (e-1)*hdrHalf + sub
}

// hdrUpper is the largest value mapping to bucket idx — what Quantile
// reports, so quantile estimates err on the conservative (slow) side.
func hdrUpper(idx int) int64 {
	if idx < hdrSubCount {
		return int64(idx)
	}
	idx -= hdrSubCount
	e := idx/hdrHalf + 1
	sub := idx % hdrHalf
	return int64(uint64(hdrHalf+sub+1)<<uint(e)) - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[hdrIndex(v)]++
	h.total++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Merge folds o's observations into h (per-worker histograms merged after a
// run).
func (h *HDR) Merge(o *HDR) {
	o.mu.Lock()
	counts, total, sum, omin, omax := o.counts, o.total, o.sum, o.min, o.max
	o.mu.Unlock()
	if total == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.total += total
	h.sum += sum
	if h.min < 0 || (omin >= 0 && omin < h.min) {
		h.min = omin
	}
	if omax > h.max {
		h.max = omax
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *HDR) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of recorded values.
func (h *HDR) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *HDR) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest recorded value (0 when empty).
func (h *HDR) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return max(h.min, 0)
}

// Max returns the largest recorded value (0 when empty).
func (h *HDR) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the value at quantile q in [0,1] — the upper bound of
// the bucket holding the ceil(q*count)-th observation, so the estimate is
// never below the true quantile by more than the bucket's ~3% width.
// Returns 0 when the histogram is empty.
func (h *HDR) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return max(h.min, 0)
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			// Never report past the true maximum: the top occupied
			// bucket's upper bound can exceed it.
			return min(hdrUpper(i), h.max)
		}
	}
	return h.max
}

// String summarizes the distribution for logs.
func (h *HDR) String() string {
	return fmt.Sprintf("count=%d min=%d p50=%d p95=%d p99=%d max=%d",
		h.Count(), h.Min(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}
