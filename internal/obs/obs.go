// Package obs is beerd's zero-dependency observability core: a
// Prometheus-text-format metrics registry (counters, gauges, classic-bucket
// histograms with atomic hot paths), lightweight W3C-traceparent-style trace
// spans collected in a ring buffer, structured logging via log/slog, an SSE
// event-stream writer, and HTTP plumbing (middleware, /metrics,
// /debug/traces, and an opt-in pprof debug mux).
//
// Everything hangs off a Hub, one per process: the service layer, the
// cluster coordinator and cmd/beerd all share the same Hub so one scrape of
// GET /metrics sees every subsystem and one job's spans — submitted on the
// coordinator, dispatched, executed on a worker — stitch under a single
// TraceID. All types are safe for concurrent use; increments on the hot
// path are single atomic ops (see BenchmarkMetricsHotPath).
package obs

import (
	"io"
	"log/slog"
	"strings"
)

// DefaultTraceCapacity is the span ring-buffer size a Hub is built with.
const DefaultTraceCapacity = 512

// Hub bundles the three observability facilities a beerd process shares
// across its subsystems. Fields are never nil.
type Hub struct {
	Metrics *Registry
	Tracer  *Tracer
	Log     *slog.Logger
}

// NewHub builds a Hub with a fresh metrics registry (runtime metrics
// pre-registered) and span ring buffer. A nil logger discards log output —
// the right default for embedded/test servers; cmd/beerd passes a real one.
func NewHub(logger *slog.Logger) *Hub {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	h := &Hub{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(DefaultTraceCapacity),
		Log:     logger,
	}
	registerRuntimeMetrics(h.Metrics)
	return h
}

// logfWriter adapts a printf-style sink (testing.T.Logf) into an io.Writer
// for slog handlers, one call per log line.
type logfWriter func(format string, args ...any)

func (f logfWriter) Write(p []byte) (int, error) {
	f("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// NewTestHub builds a Hub whose log lines go through a printf-style
// function — pass testing.T.Logf so cluster tests keep their per-test log
// attribution now that components take *slog.Logger instead of a printf
// func.
func NewTestHub(logf func(format string, args ...any)) *Hub {
	return NewHub(slog.New(slog.NewTextHandler(logfWriter(logf), &slog.HandlerOptions{
		Level: slog.LevelDebug,
	})))
}
