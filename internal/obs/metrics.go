package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). Registration happens at wiring
// time and panics on an invalid or duplicate name — a misnamed metric is a
// programming error, not a runtime condition — while the increment paths
// are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one registered metric name: help/type metadata plus a collect
// function that appends its current samples.
type family struct {
	name, help, typ string
	collect         func(b *strings.Builder)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metricNameOK enforces the exposition-format metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func metricNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// labelNameOK enforces the label-name grammar [a-zA-Z_][a-zA-Z0-9_]*.
func labelNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, typ string, labels []string, collect func(b *strings.Builder)) {
	if !metricNameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameOK(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, collect: collect}
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value. Integral floats print without an
// exponent or trailing zeros; specials use the exposition spellings.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelString renders {k="v",...} for parallel name/value slices, or ""
// when there are no labels.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family, sorted by name, in the
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters only grow).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", nil, func(b *strings.Builder) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(c.Value(), 10))
		b.WriteByte('\n')
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for sources that already keep their own atomic tallies (the
// cluster coordinator's dispatch/failover counters, GC cycle counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, func(b *strings.Builder) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(formatValue(fn()))
		b.WriteByte('\n')
	})
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", nil, func(b *strings.Builder) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(formatValue(g.Value()))
		b.WriteByte('\n')
	})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time (goroutine
// counts, heap bytes, registry sizes — anything already counted elsewhere).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, func(b *strings.Builder) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(formatValue(fn()))
		b.WriteByte('\n')
	})
}

// DefBuckets are the classic Prometheus duration buckets (seconds).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a classic cumulative-bucket histogram. Observations are two
// atomic adds plus a CAS for the sum; bucket counts are kept per-bucket
// (non-cumulative) and accumulated only at exposition time.
type Histogram struct {
	upper   []float64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (~11) and the comparison loop is
	// branch-predictable, beating binary search at this size.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	upper := append([]float64(nil), buckets...)
	return &Histogram{
		upper: upper,
		// One overflow slot for observations above the last bound; its
		// cumulative count is the +Inf bucket.
		buckets: make([]atomic.Int64, len(upper)+1),
	}
}

// writeSamples appends the histogram's _bucket/_sum/_count lines. extra
// holds pre-rendered label pairs (without braces) prepended to the le
// label, or "".
func (h *Histogram) writeSamples(b *strings.Builder, name, extra string) {
	cum := int64(0)
	for i, bound := range h.upper {
		cum += h.buckets[i].Load()
		b.WriteString(name)
		b.WriteString(`_bucket{`)
		if extra != "" {
			b.WriteString(extra)
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(formatValue(bound))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	total := h.Count()
	b.WriteString(name)
	b.WriteString(`_bucket{`)
	if extra != "" {
		b.WriteString(extra)
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"} `)
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteByte('\n')

	suffix := ""
	if extra != "" {
		suffix = "{" + extra + "}"
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(suffix)
	b.WriteByte(' ')
	b.WriteString(formatValue(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(suffix)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteByte('\n')
}

// Histogram registers and returns a histogram. Nil buckets selects
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", nil, func(b *strings.Builder) {
		h.writeSamples(b, name, "")
	})
	return h
}

// CounterVec is a family of counters keyed by label values. Children are
// created on first use and live forever (label cardinality is expected to
// be small and bounded: job types, stages, competitor names).
type CounterVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
	keys     []string // sorted lazily at collect time
}

// With returns the child counter for the given label values (one per
// registered label, in order).
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s: got %d label values, want %d", v.name, len(values), len(v.labels)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		v.keys = append(v.keys, key)
	}
	return c
}

func (v *CounterVec) collect(b *strings.Builder) {
	v.mu.Lock()
	keys := append([]string(nil), v.keys...)
	children := make([]*Counter, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		b.WriteString(v.name)
		b.WriteString(labelString(v.labels, strings.Split(k, "\xff")))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(children[i].Value(), 10))
		b.WriteByte('\n')
	}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, labels: labels, children: make(map[string]*Counter)}
	r.register(name, help, "counter", labels, v.collect)
	return v
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	name    string
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*Histogram
	keys     []string
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s: got %d label values, want %d", v.name, len(values), len(v.labels)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.buckets)
		v.children[key] = h
		v.keys = append(v.keys, key)
	}
	return h
}

func (v *HistogramVec) collect(b *strings.Builder) {
	v.mu.Lock()
	keys := append([]string(nil), v.keys...)
	sort.Strings(keys)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		values := strings.Split(k, "\xff")
		extra := labelString(v.labels, values)
		// Strip the braces: writeSamples re-renders them with le appended.
		children[i].writeSamples(b, v.name, strings.TrimSuffix(strings.TrimPrefix(extra, "{"), "}"))
	}
}

// HistogramVec registers a labeled histogram family. Nil buckets selects
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, labels: labels, buckets: buckets, children: make(map[string]*Histogram)}
	r.register(name, help, "histogram", labels, v.collect)
	return v
}
