// Package ecc implements systematic linear block codes over GF(2), focused on
// the single-error-correcting (SEC) Hamming codes that DRAM on-die ECC uses
// (Patel et al., MICRO 2020, §3.3).
//
// A code is represented in standard form: the parity-check matrix is
// H = [P | I] where P is the (n-k) x k block over the data-bit positions and
// I the identity over the parity-bit positions. BEER recovers codes up to
// equivalence, and every equivalence class of a systematic code has exactly
// one standard-form representative (paper §4.2.1), so P fully identifies a
// code in this package.
//
// Entry points: New validates and builds a code from its P block;
// SequentialHamming/BitReversedHamming/RandomHamming construct the families
// the evaluation sweeps (Hamming74 is the paper's Eq. 1 running example);
// Encode/Decode implement the §3.3 system model, with Decode blindly
// flipping the bit whose H column matches the syndrome — the behavior that
// produces miscorrections. Equal compares canonical representatives;
// EquivalentTo compares up to parity-row relabeling (what an external
// observer can distinguish). MarshalText/UnmarshalText are the text form
// stored by internal/store and served by beerd.
package ecc

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/gf2"
)

// Code is a systematic (n, k) linear block code in standard form.
// Codewords are laid out as [d_0 .. d_{k-1} | p_0 .. p_{n-k-1}].
type Code struct {
	n, k int
	p    gf2.Mat // (n-k) x k block of H over the data bits
	h    gf2.Mat // cached H = [P | I]
	// colBySyndrome maps a syndrome (packed into uint64) to the codeword bit
	// position whose H column equals it, used by syndrome decoding.
	colBySyndrome map[uint64]int
	// bits is the precomputed bitsliced batch codec (see Bitsliced).
	bits *BitCodec
}

// ErrNotSEC is wrapped by New when the parity-check block does not describe a
// single-error-correcting code.
var ErrNotSEC = fmt.Errorf("ecc: parity-check matrix is not single-error-correcting")

// New builds a code from the P block of a standard-form parity-check matrix
// H = [P | I]. It validates the SEC (minimum distance >= 3) requirements:
// every column of H nonzero and all columns pairwise distinct, which for the
// P block means every column has weight >= 2 and the columns are distinct.
func New(p gf2.Mat) (*Code, error) {
	r, k := p.Rows(), p.Cols()
	if r < 1 || k < 1 {
		return nil, fmt.Errorf("ecc: invalid shape %dx%d for P", r, k)
	}
	if r > 64 {
		return nil, fmt.Errorf("ecc: %d parity bits exceed the supported maximum of 64", r)
	}
	seen := make(map[uint64]int, k)
	for j := 0; j < k; j++ {
		col := p.Col(j)
		if col.Weight() < 2 {
			return nil, fmt.Errorf("%w: data column %d has weight %d (collides with a parity column or is zero)",
				ErrNotSEC, j, col.Weight())
		}
		key := col.Uint64()
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("%w: data columns %d and %d are identical", ErrNotSEC, prev, j)
		}
		seen[key] = j
	}
	c := &Code{n: k + r, k: k, p: p.Clone()}
	c.h = c.p.HStack(gf2.Identity(r))
	c.colBySyndrome = make(map[uint64]int, c.n)
	for j := 0; j < c.n; j++ {
		c.colBySyndrome[c.h.Col(j).Uint64()] = j
	}
	c.bits = newBitCodec(c)
	return c, nil
}

// MustNew is New, panicking on error; intended for literals in tests and
// examples.
func MustNew(p gf2.Mat) *Code {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the codeword length in bits.
func (c *Code) N() int { return c.n }

// K returns the dataword length in bits.
func (c *Code) K() int { return c.k }

// ParityBits returns n - k.
func (c *Code) ParityBits() int { return c.n - c.k }

// P returns a copy of the data-bit block of the parity-check matrix.
func (c *Code) P() gf2.Mat { return c.p.Clone() }

// H returns a copy of the full standard-form parity-check matrix [P | I].
func (c *Code) H() gf2.Mat { return c.h.Clone() }

// G returns a copy of the standard-form generator matrix [I | P^T] with shape
// k x n, so that a codeword is d * G (equivalently Encode).
func (c *Code) G() gf2.Mat {
	return gf2.Identity(c.k).HStack(c.p.Transpose())
}

// Column returns a copy of column j of H (0 <= j < n).
func (c *Code) Column(j int) gf2.Vec { return c.h.Col(j) }

// FullLength reports whether the code uses every possible nonzero syndrome as
// a column, i.e. n == 2^(n-k) - 1. Non-full-length codes are "shortened"
// (paper §4.2.4) and need the 2-CHARGED patterns for unique recovery.
func (c *Code) FullLength() bool {
	r := uint(c.n - c.k)
	return r < 64 && uint64(c.n) == (uint64(1)<<r)-1
}

// Encode expands a k-bit dataword into an n-bit codeword [d | P*d].
func (c *Code) Encode(d gf2.Vec) gf2.Vec {
	if d.Len() != c.k {
		panic(fmt.Sprintf("ecc: Encode dataword length %d, want %d", d.Len(), c.k))
	}
	return d.Concat(c.p.MulVec(d))
}

// Syndrome computes H * c' for a received n-bit codeword.
func (c *Code) Syndrome(cw gf2.Vec) gf2.Vec {
	if cw.Len() != c.n {
		panic(fmt.Sprintf("ecc: Syndrome codeword length %d, want %d", cw.Len(), c.n))
	}
	return c.h.MulVec(cw)
}

// ColumnOfSyndrome returns the codeword bit position whose H column equals
// the syndrome, or -1 when no column matches (possible for shortened codes).
func (c *Code) ColumnOfSyndrome(s gf2.Vec) int {
	if s.Len() != c.n-c.k {
		panic(fmt.Sprintf("ecc: syndrome length %d, want %d", s.Len(), c.n-c.k))
	}
	if j, ok := c.colBySyndrome[s.Uint64()]; ok {
		return j
	}
	return -1
}

// DecodeResult describes one syndrome-decoding pass.
type DecodeResult struct {
	// Data is the post-correction dataword (the first k bits of the
	// post-correction codeword).
	Data gf2.Vec
	// Codeword is the full post-correction codeword.
	Codeword gf2.Vec
	// Syndrome is H * received.
	Syndrome gf2.Vec
	// FlippedBit is the codeword bit position the decoder flipped, or -1 when
	// the syndrome was zero or matched no column.
	FlippedBit int
	// DetectedUnmatched reports a nonzero syndrome matching no H column
	// (only possible for shortened codes); the decoder leaves data unchanged.
	DetectedUnmatched bool
}

// Decode performs single-error syndrome decoding exactly as the paper models
// it (§3.3): compute the syndrome, and if it is nonzero, blindly flip the bit
// whose H column equals the syndrome. If the syndrome matches no column (a
// shortened code observing an uncorrectable error), the decoder performs no
// correction. The decoder never knows the true error count, so uncorrectable
// errors may yield silent corruption, partial correction, or miscorrection.
func (c *Code) Decode(received gf2.Vec) DecodeResult {
	s := c.Syndrome(received)
	res := DecodeResult{Syndrome: s, FlippedBit: -1}
	cw := received.Clone()
	if !s.Zero() {
		if j := c.ColumnOfSyndrome(s); j >= 0 {
			cw.Flip(j)
			res.FlippedBit = j
		} else {
			res.DetectedUnmatched = true
		}
	}
	res.Codeword = cw
	res.Data = cw.Slice(0, c.k)
	return res
}

// Equal reports whether two codes have identical standard-form parity-check
// matrices. Because standard form is a canonical representative of a code's
// equivalence class, this is equality of the externally-visible ECC function.
func (c *Code) Equal(o *Code) bool {
	return o != nil && c.n == o.n && c.k == o.k && c.p.Equal(o.p)
}

// String returns a short human-readable description.
func (c *Code) String() string {
	kind := "shortened"
	if c.FullLength() {
		kind = "full-length"
	}
	return fmt.Sprintf("(%d,%d) SEC Hamming [%s]", c.n, c.k, kind)
}

// MarshalText serializes the code as "n k p\n" followed by the P-block rows
// as bit strings; UnmarshalText reverses it. This lets recovered functions be
// stored or diffed by tooling.
func (c *Code) MarshalText() ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "secham %d %d\n", c.n, c.k)
	for i := 0; i < c.p.Rows(); i++ {
		sb.WriteString(c.p.Row(i).String())
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), nil
}

// UnmarshalText parses the format produced by MarshalText.
func (c *Code) UnmarshalText(text []byte) error {
	lines := strings.Split(strings.TrimSpace(string(text)), "\n")
	if len(lines) < 2 {
		return fmt.Errorf("ecc: truncated code text")
	}
	var n, k int
	if _, err := fmt.Sscanf(lines[0], "secham %d %d", &n, &k); err != nil {
		return fmt.Errorf("ecc: bad header %q: %w", lines[0], err)
	}
	if len(lines)-1 != n-k {
		return fmt.Errorf("ecc: expected %d parity rows, got %d", n-k, len(lines)-1)
	}
	rows := make([]gf2.Vec, n-k)
	for i := range rows {
		v, err := gf2.ParseVec(strings.TrimSpace(lines[i+1]))
		if err != nil {
			return fmt.Errorf("ecc: row %d: %w", i, err)
		}
		if v.Len() != k {
			return fmt.Errorf("ecc: row %d has length %d, want %d", i, v.Len(), k)
		}
		rows[i] = v
	}
	parsed, err := New(gf2.MatFromRows(rows...))
	if err != nil {
		return err
	}
	*c = *parsed
	return nil
}

// MinParityBits returns the minimum number of parity bits r such that a SEC
// Hamming code with k data bits exists, i.e. the smallest r with
// 2^r - r - 1 >= k.
func MinParityBits(k int) int {
	if k < 1 {
		panic("ecc: k must be >= 1")
	}
	for r := 2; ; r++ {
		if (uint64(1)<<uint(r))-uint64(r)-1 >= uint64(k) {
			return r
		}
	}
}

// weightOK reports whether x has Hamming weight >= 2 (valid data column).
func weightOK(x uint64) bool { return bits.OnesCount64(x) >= 2 }
