package ecc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/gf2"
)

func TestHamming74MatchesPaperEquation1(t *testing.T) {
	c := Hamming74()
	if c.N() != 7 || c.K() != 4 || c.ParityBits() != 3 {
		t.Fatalf("shape = (%d,%d)", c.N(), c.K())
	}
	if !c.FullLength() {
		t.Fatal("the (7,4) Hamming code is full-length")
	}
	wantH := gf2.MatFromBits([][]int{
		{1, 1, 1, 0, 1, 0, 0},
		{1, 1, 0, 1, 0, 1, 0},
		{1, 0, 1, 1, 0, 0, 1},
	})
	if !c.H().Equal(wantH) {
		t.Fatalf("H =\n%s\nwant\n%s", c.H(), wantH)
	}
	// G from the paper's Equation 1 (G^T shown there; G = [I | P^T]).
	wantG := gf2.MatFromBits([][]int{
		{1, 0, 0, 0, 1, 1, 1},
		{0, 1, 0, 0, 1, 1, 0},
		{0, 0, 1, 0, 1, 0, 1},
		{0, 0, 0, 1, 0, 1, 1},
	})
	if !c.G().Equal(wantG) {
		t.Fatalf("G =\n%s\nwant\n%s", c.G(), wantG)
	}
}

func TestEncodeProducesValidCodewords(t *testing.T) {
	c := Hamming74()
	for d := uint64(0); d < 16; d++ {
		cw := c.Encode(gf2.VecFromUint(4, d))
		if !c.Syndrome(cw).Zero() {
			t.Fatalf("H*c != 0 for dataword %04b", d)
		}
		if !cw.Slice(0, 4).Equal(gf2.VecFromUint(4, d)) {
			t.Fatal("encoding is not systematic")
		}
	}
}

func TestDecodeCorrectsAllSingleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, k := range []int{4, 7, 16, 32, 57, 64, 120, 128} {
		c := RandomHamming(k, rng)
		d := gf2.NewVec(k)
		for j := 0; j < k; j++ {
			d.Set(j, rng.IntN(2) == 1)
		}
		cw := c.Encode(d)
		for pos := 0; pos < c.N(); pos++ {
			bad := cw.Clone()
			bad.Flip(pos)
			res := c.Decode(bad)
			if !res.Data.Equal(d) {
				t.Fatalf("k=%d: single-bit error at %d not corrected", k, pos)
			}
			if res.FlippedBit != pos {
				t.Fatalf("k=%d: decoder flipped %d, want %d", k, res.FlippedBit, pos)
			}
		}
	}
}

func TestDecodeZeroSyndromeNoAction(t *testing.T) {
	c := Hamming74()
	cw := c.Encode(gf2.VecFromUint(4, 0b1010))
	res := c.Decode(cw)
	if res.FlippedBit != -1 || res.DetectedUnmatched {
		t.Fatal("clean codeword must decode with no action")
	}
	if !res.Data.Equal(gf2.VecFromUint(4, 0b1010)) {
		t.Fatal("clean codeword decoded to wrong data")
	}
}

func TestDoubleErrorsAreNotCorrectable(t *testing.T) {
	// For a full-length SEC code every double error maps to some column, so
	// the decoder always flips a third (or first) bit: the result must never
	// equal the sent codeword but must always be a valid codeword after the
	// flip only if the syndrome matched. Here we verify the decode result
	// differs from the original data for at least one double error, i.e. the
	// code is not magically correcting beyond its guarantee.
	c := Hamming74()
	d := gf2.VecFromUint(4, 0b0110)
	cw := c.Encode(d)
	sawMiss := false
	for i := 0; i < c.N(); i++ {
		for j := i + 1; j < c.N(); j++ {
			bad := cw.Clone()
			bad.Flip(i)
			bad.Flip(j)
			if !c.Decode(bad).Data.Equal(d) {
				sawMiss = true
			}
		}
	}
	if !sawMiss {
		t.Fatal("every double error decoded correctly; SEC bound violated")
	}
}

func TestShortenedCodeUnmatchedSyndrome(t *testing.T) {
	// k=5 needs r=4, n=9 < 15: shortened. Find a double error whose syndrome
	// matches no column and confirm the decoder reports it and does nothing.
	rng := rand.New(rand.NewPCG(2, 3))
	c := RandomHamming(5, rng)
	if c.FullLength() {
		t.Fatal("(9,5) code must be shortened")
	}
	d := gf2.NewVec(5)
	cw := c.Encode(d)
	found := false
	for i := 0; i < c.N() && !found; i++ {
		for j := i + 1; j < c.N() && !found; j++ {
			bad := cw.Clone()
			bad.Flip(i)
			bad.Flip(j)
			res := c.Decode(bad)
			if res.DetectedUnmatched {
				found = true
				if res.FlippedBit != -1 {
					t.Fatal("unmatched syndrome must not flip any bit")
				}
				if !res.Codeword.Equal(bad) {
					t.Fatal("unmatched syndrome must leave the codeword unchanged")
				}
			}
		}
	}
	if !found {
		t.Fatal("no unmatched-syndrome double error found for a shortened code")
	}
}

func TestNewRejectsInvalidP(t *testing.T) {
	cases := []struct {
		name string
		p    gf2.Mat
	}{
		{"zero column", gf2.MatFromBits([][]int{{1, 0}, {1, 0}})},
		{"weight-1 column", gf2.MatFromBits([][]int{{1, 1}, {1, 0}})},
		{"duplicate columns", gf2.MatFromBits([][]int{{1, 1}, {1, 1}})},
	}
	for _, tc := range cases {
		if _, err := New(tc.p); err == nil {
			t.Errorf("%s: New accepted an invalid P block", tc.name)
		}
	}
}

func TestMinParityBits(t *testing.T) {
	cases := map[int]int{1: 2, 2: 3, 4: 3, 5: 4, 11: 4, 12: 5, 26: 5, 27: 6,
		57: 6, 58: 7, 64: 7, 120: 7, 121: 8, 128: 8, 247: 8}
	for k, want := range cases {
		if got := MinParityBits(k); got != want {
			t.Errorf("MinParityBits(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestFullLengthBoundaries(t *testing.T) {
	for _, k := range []int{4, 11, 26, 57, 120} {
		if !SequentialHamming(k).FullLength() {
			t.Errorf("k=%d should be full-length", k)
		}
	}
	for _, k := range []int{5, 10, 27, 58, 119} {
		if SequentialHamming(k).FullLength() {
			t.Errorf("k=%d should be shortened", k)
		}
	}
}

func TestRandomHammingValidAndDeterministic(t *testing.T) {
	for _, k := range []int{4, 13, 32, 64, 128} {
		a := RandomHamming(k, rand.New(rand.NewPCG(9, uint64(k))))
		b := RandomHamming(k, rand.New(rand.NewPCG(9, uint64(k))))
		if !a.Equal(b) {
			t.Errorf("k=%d: same seed produced different codes", k)
		}
		c := RandomHamming(k, rand.New(rand.NewPCG(10, uint64(k))))
		if k > 4 && a.Equal(c) {
			t.Errorf("k=%d: different seeds produced identical codes", k)
		}
	}
}

func TestConstructorFamiliesDiffer(t *testing.T) {
	// The manufacturer families must be inequivalent (not merely unequal):
	// equivalent codes are externally indistinguishable, so equivalent
	// "different" designs would be the same ECC function to BEER.
	for _, k := range []int{11, 16, 32, 64, 128} {
		seq := SequentialHamming(k)
		low := LowWeightHamming(k)
		rnd := RandomHamming(k, rand.New(rand.NewPCG(4, uint64(k))))
		if seq.EquivalentTo(low) {
			t.Fatalf("k=%d: sequential and low-weight designs are equivalent", k)
		}
		if seq.EquivalentTo(rnd) || low.EquivalentTo(rnd) {
			t.Fatalf("k=%d: random design collides with a structured one", k)
		}
	}
}

// Bit reversal permutes parity rows, so BitReversedHamming is documented to
// be an equivalent code to SequentialHamming: a worked example of why
// equality must be tested up to equivalence.
func TestBitReversedIsEquivalentToSequential(t *testing.T) {
	for _, k := range []int{8, 16, 32} {
		seq := SequentialHamming(k)
		rev := BitReversedHamming(k)
		if seq.Equal(rev) {
			t.Fatalf("k=%d: matrices should differ literally", k)
		}
		if !seq.EquivalentTo(rev) {
			t.Fatalf("k=%d: bit reversal must yield an equivalent code", k)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for _, k := range []int{4, 16, 57, 128} {
		orig := RandomHamming(k, rng)
		text, err := orig.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Code
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !orig.Equal(&back) {
			t.Fatalf("k=%d: round trip changed the code", k)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var c Code
	for _, text := range []string{"", "secham 7 4", "bogus 1 2\n111", "secham 7 4\n11\n11\n11"} {
		if err := c.UnmarshalText([]byte(text)); err == nil {
			t.Errorf("UnmarshalText(%q) succeeded", text)
		}
	}
}

func TestColumnOfSyndromeRoundTrip(t *testing.T) {
	c := SequentialHamming(26)
	for j := 0; j < c.N(); j++ {
		if got := c.ColumnOfSyndrome(c.Column(j)); got != j {
			t.Fatalf("column %d resolved to %d", j, got)
		}
	}
}

func TestCountHammingCodes(t *testing.T) {
	// r=3: 2^3-3-1 = 4 candidate columns; k=4 ordered choices = 4! = 24.
	if got := CountHammingCodes(4, 3); got != 24 {
		t.Fatalf("CountHammingCodes(4,3) = %d, want 24", got)
	}
	if got := CountHammingCodes(5, 3); got != 0 {
		t.Fatalf("CountHammingCodes(5,3) = %d, want 0", got)
	}
	if got := CountHammingCodes(128, 8); got != ^uint64(0) {
		t.Fatalf("CountHammingCodes(128,8) should saturate, got %d", got)
	}
}

// Property: decoding an encoded word with at most one injected error always
// recovers the data, for random codes, datawords and error positions.
func TestDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	for trial := 0; trial < 300; trial++ {
		k := 4 + rng.IntN(60)
		c := RandomHamming(k, rng)
		d := gf2.NewVec(k)
		for j := 0; j < k; j++ {
			d.Set(j, rng.IntN(2) == 1)
		}
		cw := c.Encode(d)
		if rng.IntN(2) == 1 {
			cw.Flip(rng.IntN(c.N()))
		}
		if !c.Decode(cw).Data.Equal(d) {
			t.Fatalf("trial %d: <=1 error not corrected (k=%d)", trial, k)
		}
	}
}

// Property (testing/quick): canonicalization is idempotent, preserves
// equivalence, and equivalent codes share profiles of decode behavior on
// single errors.
func TestCanonicalizeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		k := 4 + int(seed%20)
		code := RandomHamming(k, rng)
		canon := code.Canonicalize()
		if !canon.EquivalentTo(code) {
			return false
		}
		if !canon.Canonicalize().Equal(canon) {
			return false
		}
		return canon.CanonicalKey() == code.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
