package ecc

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"repro/internal/gf2"
)

// This file provides the code constructors used throughout the reproduction:
// a uniformly random SEC Hamming code (the space BEER must search), plus the
// deterministic "design families" used by the three simulated DRAM
// manufacturers. Different manufacturers pick different parity-check matrix
// organizations for circuit-level reasons (paper §5.1.3); the families below
// mimic the unstructured (A) and visibly structured (B, C) miscorrection
// profiles in the paper's Figure 3.

// dataColumnValues returns all candidate data-column values for r parity
// bits: every r-bit value with Hamming weight >= 2, in increasing numeric
// order. There are 2^r - r - 1 of them.
func dataColumnValues(r int) []uint64 {
	limit := uint64(1) << uint(r)
	vals := make([]uint64, 0, limit)
	for v := uint64(3); v < limit; v++ {
		if weightOK(v) {
			vals = append(vals, v)
		}
	}
	return vals
}

func pFromColumnValues(k, r int, cols []uint64) gf2.Mat {
	p := gf2.NewMat(r, k)
	for j := 0; j < k; j++ {
		for i := 0; i < r; i++ {
			if cols[j]>>uint(i)&1 == 1 {
				p.Set(i, j, true)
			}
		}
	}
	return p
}

// RandomHamming returns a uniformly random standard-form (k+r, k) SEC Hamming
// code with the minimum number of parity bits for k, drawing randomness from
// rng. Two calls with identical rng state produce identical codes.
func RandomHamming(k int, rng *rand.Rand) *Code {
	return RandomHammingWithParity(k, MinParityBits(k), rng)
}

// RandomHammingWithParity is RandomHamming with an explicit parity-bit count
// r, which must satisfy 2^r - r - 1 >= k.
func RandomHammingWithParity(k, r int, rng *rand.Rand) *Code {
	vals := dataColumnValues(r)
	if len(vals) < k {
		panic(fmt.Sprintf("ecc: r=%d parity bits support at most k=%d, requested %d", r, len(vals), k))
	}
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	return MustNew(pFromColumnValues(k, r, vals[:k]))
}

// SequentialHamming returns the deterministic code whose data columns are the
// weight->=2 syndrome values in increasing numeric order. Its regular column
// structure produces the repeating miscorrection-profile patterns the paper
// observes for manufacturer B.
func SequentialHamming(k int) *Code {
	r := MinParityBits(k)
	vals := dataColumnValues(r)
	return MustNew(pFromColumnValues(k, r, vals[:k]))
}

// LowWeightHamming returns the deterministic code whose data columns are the
// weight->=2 syndrome values ordered by (Hamming weight, value). Minimizing
// column weight minimizes the XOR-gate count of the encoder and syndrome
// logic, a realistic circuit-level design choice (paper §5.1.3 speculates
// manufacturers organize parity-check matrices for circuit trade-offs). Its
// column weight profile differs from SequentialHamming's for shortened
// codes, so the two are genuinely inequivalent designs (a row permutation
// preserves column weights).
func LowWeightHamming(k int) *Code {
	r := MinParityBits(k)
	vals := dataColumnValues(r)
	ordered := append([]uint64(nil), vals...)
	key := func(x uint64) uint64 { return uint64(bits.OnesCount64(x))<<uint(r) | x }
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && key(ordered[j]) < key(ordered[j-1]); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	return MustNew(pFromColumnValues(k, r, ordered[:k]))
}

// BitReversedHamming returns the code whose data columns are the weight->=2
// syndrome values ordered by their bit-reversed value.
//
// Note: bit reversal permutes the parity rows, so this code is *equivalent*
// (ecc.EquivalentTo) to SequentialHamming of the same k — the two differ
// only in internal parity labeling and are externally indistinguishable. It
// is kept as a worked example of code equivalence; simulated manufacturers
// use genuinely distinct designs.
func BitReversedHamming(k int) *Code {
	r := MinParityBits(k)
	vals := dataColumnValues(r)
	rev := func(x uint64) uint64 { return bits.Reverse64(x) >> uint(64-r) }
	// Insertion sort by reversed value keeps this dependency-free and stable.
	ordered := append([]uint64(nil), vals...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && rev(ordered[j]) < rev(ordered[j-1]); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	return MustNew(pFromColumnValues(k, r, ordered[:k]))
}

// Hamming74 returns the (7,4,3) Hamming code of the paper's Equation 1, used
// as the running example for Tables 1 and 2.
func Hamming74() *Code {
	return MustNew(gf2.MatFromBits([][]int{
		{1, 1, 1, 0},
		{1, 1, 0, 1},
		{1, 0, 1, 1},
	}))
}

// CountHammingCodes returns the number of distinct standard-form (k+r, k) SEC
// Hamming codes, i.e. the falling factorial (2^r - r - 1)(2^r - r - 2)...
// over k terms, saturating at math.MaxUint64. This quantifies the design
// space BEER disambiguates (paper §3.3 "Design Space").
func CountHammingCodes(k, r int) uint64 {
	avail := (uint64(1) << uint(r)) - uint64(r) - 1
	if uint64(k) > avail {
		return 0
	}
	total := uint64(1)
	for i := uint64(0); i < uint64(k); i++ {
		next := total * (avail - i)
		if total != 0 && next/total != avail-i {
			return ^uint64(0) // overflow: saturate
		}
		total = next
	}
	return total
}
