package ecc

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gf2"
)

// diffOneBatch runs one lanes-wide encode/inject/decode differentially:
// every lane through the scalar reference path, the whole batch through the
// BitCodec, and fails on any divergence. data and mask supply per-lane
// datawords and injected-error positions.
func diffOneBatch(t *testing.T, code *Code, lanes int, data, mask []gf2.Vec) {
	t.Helper()
	bc := code.Bitsliced()
	n, k := code.N(), code.K()

	var slab gf2.Slab
	db := slab.Alloc(k, lanes)
	cb := slab.Alloc(n, lanes)
	sb := slab.Alloc(code.ParityBits(), lanes)
	mb := slab.Alloc(n, lanes)
	for j := 0; j < lanes; j++ {
		db.PackVec(j, data[j])
		mb.PackVec(j, mask[j])
	}
	bc.Encode(db, cb)
	for r := 0; r < n; r++ {
		cb.Words()[r] ^= mb.Row(r)
	}
	bc.Syndrome(cb, sb)
	dec := bc.Decode(cb, sb, mb.Words())

	for j := 0; j < lanes; j++ {
		rx := code.Encode(data[j])
		rx.XorInto(mask[j])
		res := code.Decode(rx)

		if got := cb.UnpackLane(j); !got.Equal(res.Codeword) {
			t.Fatalf("lane %d: post-correction codeword %s, scalar %s", j, got, res.Codeword)
		}
		if got := sb.UnpackLane(j); !got.Equal(res.Syndrome) {
			t.Fatalf("lane %d: syndrome %s, scalar %s", j, got, res.Syndrome)
		}
		bit := uint64(1) << uint(j)
		if got, want := dec.SyndromeNonzero&bit != 0, !res.Syndrome.Zero(); got != want {
			t.Fatalf("lane %d: SyndromeNonzero=%v, scalar nonzero=%v", j, got, want)
		}
		if got, want := dec.FlippedAny&bit != 0, res.FlippedBit >= 0; got != want {
			t.Fatalf("lane %d: FlippedAny=%v, scalar FlippedBit=%d", j, got, res.FlippedBit)
		}
		wantErrFlip := res.FlippedBit >= 0 && mask[j].Get(res.FlippedBit)
		if got := dec.FlippedErr&bit != 0; got != wantErrFlip {
			t.Fatalf("lane %d: FlippedErr=%v, want %v (flipped %d)", j, got, wantErrFlip, res.FlippedBit)
		}
		wantUnmatched := res.DetectedUnmatched
		if got := dec.SyndromeNonzero&^dec.FlippedAny&bit != 0; got != wantUnmatched {
			t.Fatalf("lane %d: unmatched=%v, scalar DetectedUnmatched=%v", j, got, wantUnmatched)
		}
	}
}

func TestBitCodecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xb175, 0x11ced))
	codes := []*Code{
		MustNew(Hamming74().P()),
		SequentialHamming(16),
		BitReversedHamming(32),
		RandomHamming(57, rng), // full-length (63,57)
		SequentialHamming(20),  // shortened: unmatched syndromes reachable
	}
	for _, code := range codes {
		for _, lanes := range []int{1, 3, 64} {
			for trial := 0; trial < 20; trial++ {
				data := make([]gf2.Vec, lanes)
				mask := make([]gf2.Vec, lanes)
				for j := range data {
					data[j] = gf2.NewVec(code.K())
					for i := 0; i < code.K(); i++ {
						data[j].Set(i, rng.IntN(2) == 1)
					}
					mask[j] = gf2.NewVec(code.N())
					// 0..4 injected errors exercises correct, silent,
					// partial and miscorrected outcomes.
					for e := rng.IntN(5); e > 0; e-- {
						mask[j].Flip(rng.IntN(code.N()))
					}
				}
				diffOneBatch(t, code, lanes, data, mask)
			}
		}
	}
}

func TestBitCodecColumnMatchesScalar(t *testing.T) {
	code := SequentialHamming(26)
	bc := code.Bitsliced()
	for j := 0; j < code.N(); j++ {
		if bc.Column(j) != code.Column(j).Uint64() {
			t.Fatalf("column %d: packed %#x, scalar %#x", j, bc.Column(j), code.Column(j).Uint64())
		}
	}
}
