package ecc

import (
	"math/bits"
	"testing"

	"repro/internal/gf2"
)

// fuzzBit streams bit i out of b, wrapping; an empty slice reads as zeros.
func fuzzBit(b []byte, i int) bool {
	if len(b) == 0 {
		return false
	}
	i %= 8 * len(b)
	return b[i/8]>>(uint(i)%8)&1 == 1
}

// fuzzCode deterministically builds a valid SEC Hamming code from fuzz
// bytes: r parity rows from rSel, one H data column per byte of colBytes,
// nudging invalid or duplicate columns to the next valid value so nearly
// every input exercises the codec instead of being skipped.
func fuzzCode(rSel uint8, colBytes []byte) *Code {
	r := 3 + int(rSel%6) // 3..8 parity bits
	maxK := (1 << uint(r)) - r - 1
	k := len(colBytes)
	if k > maxK {
		k = maxK
	}
	if k < 1 {
		return nil
	}
	mask := uint64(1<<uint(r)) - 1
	seen := make(map[uint64]bool, k)
	p := gf2.NewMat(r, k)
	for j := 0; j < k; j++ {
		col := uint64(colBytes[j]) & mask
		for steps := 0; ; steps++ {
			if steps > 1<<uint(r) {
				return nil // exhausted (cannot happen while k <= maxK)
			}
			if bits.OnesCount64(col) >= 2 && !seen[col] {
				break
			}
			col = (col + 1) & mask
		}
		seen[col] = true
		for i := 0; i < r; i++ {
			p.Set(i, j, col>>uint(i)&1 == 1)
		}
	}
	code, err := New(p)
	if err != nil {
		return nil
	}
	return code
}

// FuzzBitsliced holds the bitsliced batch codec bit-identical to the scalar
// Encode/Decode reference across random codes, datawords, error masks and
// lane counts (including ragged batches of fewer than 64 lanes). Any
// divergence between the two representations fails here first.
func FuzzBitsliced(f *testing.F) {
	f.Add(uint8(0), []byte{0x03, 0x05, 0x06, 0x07}, uint8(1), []byte{0xff}, []byte{0x01})
	f.Add(uint8(3), []byte("sequential-ish-columns!"), uint8(64), []byte("data"), []byte{0xaa, 0x55})
	f.Add(uint8(2), []byte{7, 11, 13, 14, 19, 21, 22, 25}, uint8(17), []byte{}, []byte{0x80, 0x00, 0x40})
	f.Add(uint8(5), []byte{3, 5, 6, 9, 10}, uint8(63), []byte{0x12, 0x34}, []byte{})
	f.Fuzz(func(t *testing.T, rSel uint8, colBytes []byte, laneSel uint8, dataBytes, maskBytes []byte) {
		code := fuzzCode(rSel, colBytes)
		if code == nil {
			t.Skip("no valid code from input")
		}
		lanes := 1 + int(laneSel%64)
		n, k := code.N(), code.K()
		data := make([]gf2.Vec, lanes)
		maskVecs := make([]gf2.Vec, lanes)
		for j := 0; j < lanes; j++ {
			data[j] = gf2.NewVec(k)
			for i := 0; i < k; i++ {
				data[j].Set(i, fuzzBit(dataBytes, j*k+i))
			}
			maskVecs[j] = gf2.NewVec(n)
			for i := 0; i < n; i++ {
				maskVecs[j].Set(i, fuzzBit(maskBytes, j*n+i))
			}
		}
		diffOneBatch(t, code, lanes, data, maskVecs)
	})
}
