package ecc

import (
	"sort"
	"strings"

	"repro/internal/gf2"
)

// Code equivalence.
//
// On-die ECC never exposes its parity bits, so two codes that differ only in
// parity-bit labeling are externally indistinguishable (paper §4.2.1,
// §5.4 "Disambiguating equivalent codes"). Within standard form H = [P | I]
// the full residual symmetry is exactly permutation of the parity rows:
// H' = A*H preserves both the codeword set and the syndrome-decode behavior
// for any invertible A, and keeping [A*P | A*Pi] in standard form forces A to
// be a permutation matrix. BEER therefore recovers codes up to this row
// permutation, and this file provides the canonical representative used to
// compare recovered functions against ground truth.

// Canonicalize returns the canonical representative of the code's
// equivalence class: the P block with rows sorted lexicographically.
func (c *Code) Canonicalize() *Code {
	rows := make([]gf2.Vec, c.p.Rows())
	for i := range rows {
		rows[i] = c.p.Row(i)
	}
	sort.Slice(rows, func(a, b int) bool {
		return strings.Compare(rows[a].String(), rows[b].String()) < 0
	})
	return MustNew(gf2.MatFromRows(rows...))
}

// CanonicalKey returns a string that is identical for exactly the codes in
// the same equivalence class.
func (c *Code) CanonicalKey() string {
	rows := make([]string, c.p.Rows())
	for i := range rows {
		rows[i] = c.p.Row(i).String()
	}
	sort.Strings(rows)
	return strings.Join(rows, "|")
}

// EquivalentTo reports whether two codes are externally indistinguishable:
// identical up to parity-bit relabeling.
func (c *Code) EquivalentTo(o *Code) bool {
	return o != nil && c.n == o.n && c.k == o.k && c.CanonicalKey() == o.CanonicalKey()
}
