package ecc

import (
	"fmt"

	"repro/internal/gf2"
)

// BitCodec is the bitsliced (batch) form of a Code: it encodes, computes
// syndromes for, and decodes 64 independent codewords per word operation,
// using the gf2.Batch lane layout (DESIGN.md §11). Row r of a batch packs bit
// r of every lane, so one parity bit of all 64 codewords is a handful of
// XORs, and syndrome matching against an H column is r AND/ANDNOT operations
// regardless of lane count.
//
// The codec is immutable and safe for concurrent use; every Code carries one
// (see Code.Bitsliced). The scalar Encode/Decode on Code remain the reference
// implementation — FuzzBitsliced in this package holds the two bit-identical.
type BitCodec struct {
	n, k, r int
	// cols[j] is H column j packed into a uint64 (bit i = row i), the
	// syndrome that makes the decoder flip bit j.
	cols []uint64
	// dataSupport[i] lists the data-bit positions in parity row i of P;
	// parity row i of H additionally covers parity bit k+i.
	dataSupport [][]int
}

func newBitCodec(c *Code) *BitCodec {
	bc := &BitCodec{
		n:           c.n,
		k:           c.k,
		r:           c.n - c.k,
		cols:        make([]uint64, c.n),
		dataSupport: make([][]int, c.n-c.k),
	}
	for j := 0; j < c.n; j++ {
		bc.cols[j] = c.h.Col(j).Uint64()
	}
	for i := range bc.dataSupport {
		bc.dataSupport[i] = c.p.Row(i).Support()
	}
	return bc
}

// Bitsliced returns the batch codec for c. The codec is built once per Code
// and shared; it is safe for concurrent use.
func (c *Code) Bitsliced() *BitCodec { return c.bits }

// N returns the codeword length in bits.
func (bc *BitCodec) N() int { return bc.n }

// K returns the dataword length in bits.
func (bc *BitCodec) K() int { return bc.k }

// ParityBits returns n - k.
func (bc *BitCodec) ParityBits() int { return bc.r }

// Column returns H column j packed into a uint64 (bit i = parity row i).
func (bc *BitCodec) Column(j int) uint64 { return bc.cols[j] }

// Encode fills cw (n rows) from data (k rows): the data rows are copied and
// each parity row becomes the XOR of its P-row support, for all lanes at
// once. data and cw must have the same lane count.
func (bc *BitCodec) Encode(data, cw gf2.Batch) {
	bc.checkShape("Encode data", data, bc.k)
	bc.checkShape("Encode codeword", cw, bc.n)
	bc.sameLanes(data, cw)
	dw, cww := data.Words(), cw.Words()
	copy(cww[:bc.k], dw)
	for i, supp := range bc.dataSupport {
		var acc uint64
		for _, j := range supp {
			acc ^= dw[j]
		}
		cww[bc.k+i] = acc
	}
}

// Syndrome fills synd (n-k rows) with H * cw for every lane of cw (n rows).
func (bc *BitCodec) Syndrome(cw, synd gf2.Batch) {
	bc.checkShape("Syndrome codeword", cw, bc.n)
	bc.checkShape("Syndrome", synd, bc.r)
	bc.sameLanes(cw, synd)
	cww, sw := cw.Words(), synd.Words()
	for i, supp := range bc.dataSupport {
		acc := cww[bc.k+i]
		for _, j := range supp {
			acc ^= cww[j]
		}
		sw[i] = acc
	}
}

// BatchDecode summarizes one batch decoding pass as per-lane masks.
type BatchDecode struct {
	// SyndromeNonzero marks lanes whose syndrome was nonzero (an error was
	// detected, correctly or not).
	SyndromeNonzero uint64
	// FlippedAny marks lanes where the decoder flipped some codeword bit.
	// SyndromeNonzero &^ FlippedAny are the detected-unmatched lanes
	// (shortened codes only).
	FlippedAny uint64
	// FlippedErr marks lanes where the flipped bit was one of the injected
	// error positions in errMask (only tracked when errMask != nil).
	FlippedErr uint64
}

// Decode performs syndrome decoding in place on cw given its precomputed
// syndrome batch: for each codeword position, the lanes whose syndrome
// equals that H column get the bit flipped — the same blind single-error
// correction as Code.Decode, 64 lanes at a time. errMask, when non-nil, must
// be the n row words of the injected-error batch; it feeds FlippedErr so
// callers can classify partial corrections vs miscorrections without
// unpacking lanes.
func (bc *BitCodec) Decode(cw, synd gf2.Batch, errMask []uint64) BatchDecode {
	bc.checkShape("Decode codeword", cw, bc.n)
	bc.checkShape("Decode syndrome", synd, bc.r)
	bc.sameLanes(cw, synd)
	sw := synd.Words()
	var nz uint64
	for _, s := range sw {
		nz |= s
	}
	nz &= cw.LaneMask()
	res := BatchDecode{SyndromeNonzero: nz}
	if nz == 0 {
		return res
	}
	cww := cw.Words()
	for j := 0; j < bc.n; j++ {
		// A lane matches column j iff its syndrome agrees with the column
		// at every parity row. Start from the nonzero-syndrome lanes: every
		// H column is nonzero, so zero-syndrome lanes can never match.
		m := nz
		col := bc.cols[j]
		for i := 0; i < bc.r; i++ {
			if col>>uint(i)&1 == 1 {
				m &= sw[i]
			} else {
				m &^= sw[i]
			}
			if m == 0 {
				break
			}
		}
		if m == 0 {
			continue
		}
		cww[j] ^= m
		res.FlippedAny |= m
		if errMask != nil {
			res.FlippedErr |= m & errMask[j]
		}
	}
	return res
}

func (bc *BitCodec) checkShape(what string, b gf2.Batch, bits int) {
	if b.Bits() != bits {
		panic(fmt.Sprintf("ecc: %s batch has %d rows, want %d", what, b.Bits(), bits))
	}
}

func (bc *BitCodec) sameLanes(a, b gf2.Batch) {
	if a.Lanes() != b.Lanes() {
		panic(fmt.Sprintf("ecc: batch lane mismatch %d vs %d", a.Lanes(), b.Lanes()))
	}
}
