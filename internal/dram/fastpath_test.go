package dram

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/gf2"
	"repro/internal/stats"
)

// TestVRTJitterBound proves the constant the ReadRow fast path leans on:
// Uniform01 never reaches 0 or 1, so the normal quantile of any hash is
// strictly inside (-vrtJitterBound, vrtJitterBound). The extreme hashes give
// the extreme quantiles (Uniform01 depends monotonically on h>>12).
func TestVRTJitterBound(t *testing.T) {
	lo := stats.NormalInv(stats.Uniform01(0))
	hi := stats.NormalInv(stats.Uniform01(^uint64(0)))
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("extreme quantiles not finite: %v, %v", lo, hi)
	}
	// Leave a wide margin: the band argument tolerates rounding slop only
	// because the bound is far outside the reachable range (~8.3).
	if lo <= -vrtJitterBound+2 || hi >= vrtJitterBound-2 {
		t.Fatalf("jitter bound too tight: reachable range [%v, %v] vs bound %v", lo, hi, vrtJitterBound)
	}
}

// referenceRead recomputes a row read the way the pre-fast-path code did:
// every charged cell evaluates its full jittered retention time. readCounter
// is the value the chip used for that read.
func referenceRead(c *Chip, bank, row int, charges gf2.Vec, exposure float64, readCounter uint64) gf2.Vec {
	m := DefaultRetention()
	out := charges.Clone()
	if exposure > 0 {
		for _, i := range charges.Support() {
			h := stats.HashN(c.cfg.Seed, uint64(bank), uint64(row), uint64(i))
			tRet := m.CellRetentionSeconds(h)
			if m.VRTSigmaLog > 0 {
				jitter := stats.NormalInv(stats.Uniform01(stats.HashN(h, readCounter)))
				tRet *= math.Exp(m.VRTSigmaLog * jitter)
			}
			if tRet < exposure {
				out.Set(i, false)
			}
		}
	}
	return out
}

// TestReadRowFastPathExact holds the banded fast path bit-identical to the
// straightforward per-cell jitter evaluation across many reads and decay
// windows (including heavy-decay ones where most cells sit far outside the
// jitter band).
func TestReadRowFastPathExact(t *testing.T) {
	c := New(Config{Banks: 1, Rows: 4, CellsPerRow: 256, Seed: 0xfa57})
	rng := rand.New(rand.NewPCG(5, 6))
	written := make([]gf2.Vec, 4)
	for r := range written {
		v := gf2.NewVec(256)
		for i := 0; i < 256; i++ {
			v.Set(i, rng.IntN(4) != 0)
		}
		written[r] = v
		c.WriteRow(0, r, v)
	}
	for _, pause := range []time.Duration{0, time.Minute, 10 * time.Minute, 3 * time.Hour, 48 * time.Hour} {
		c.PauseRefresh(pause)
		for r := 0; r < 4; r++ {
			for rep := 0; rep < 5; rep++ {
				exposure := c.thermalSeconds - c.rows[0][r].writeStamp
				got := c.ReadRow(0, r)
				want := referenceRead(c, 0, r, c.rows[0][r].charges, exposure, c.readCounter)
				if !got.Equal(want) {
					t.Fatalf("pause %v row %d rep %d: fast path diverges from reference", pause, r, rep)
				}
			}
		}
	}
}

// TestReadRowIntoReuse checks that reads through a reused destination match
// fresh-allocation reads and do not allocate.
func TestReadRowIntoReuse(t *testing.T) {
	c := New(Config{Banks: 1, Rows: 1, CellsPerRow: 128, Seed: 9})
	v := gf2.NewVec(128)
	for i := 0; i < 128; i += 3 {
		v.Set(i, true)
	}
	c.WriteRow(0, 0, v)
	c.PauseRefresh(20 * time.Minute)
	dst := gf2.NewVec(128)
	c.ReadRowInto(0, 0, dst) // warm the retention cache
	allocs := testing.AllocsPerRun(50, func() {
		c.ReadRowInto(0, 0, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm ReadRowInto allocated %v times per read", allocs)
	}
}
