package dram

import (
	"math"
	"testing"
	"time"

	"repro/internal/gf2"
)

func testChip(layout Layout) *Chip {
	return New(Config{
		Banks:       2,
		Rows:        64,
		CellsPerRow: 256,
		Seed:        42,
		Layout:      layout,
	})
}

func allOnes(n int) gf2.Vec {
	v := gf2.NewVec(n)
	for i := 0; i < n; i++ {
		v.Set(i, true)
	}
	return v
}

func TestWriteReadRoundTripNoDecay(t *testing.T) {
	c := testChip(nil)
	v := gf2.VecFromSupport(256, 0, 1, 100, 255)
	c.WriteRow(0, 0, v)
	got := c.ReadRow(0, 0)
	if !got.Equal(v) {
		t.Fatal("read disagrees with write with refresh running")
	}
}

func TestReadUnwrittenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading unwritten row")
		}
	}()
	testChip(nil).ReadRow(0, 0)
}

func TestDecayIsUnidirectional(t *testing.T) {
	c := testChip(nil)
	n := c.CellsPerRow()
	ones := allOnes(n)
	zeros := gf2.NewVec(n)
	c.WriteRow(0, 0, ones)
	c.WriteRow(0, 1, zeros)
	c.PauseRefresh(40 * time.Minute)
	gotOnes := c.ReadRow(0, 0)
	gotZeros := c.ReadRow(0, 1)
	if gotOnes.Weight() >= n {
		t.Fatal("a 40-minute pause at 80C should decay some charged true-cells")
	}
	if gotZeros.Weight() != 0 {
		t.Fatal("discharged true-cells must never flip 0->1")
	}
}

func TestAntiCellPolarity(t *testing.T) {
	c := testChip(AllAntiLayout)
	n := c.CellsPerRow()
	// For anti-cells, logical 0 is the CHARGED state: writing all-zero and
	// pausing refresh must produce 0->1 errors, while all-one is immune.
	c.WriteRow(0, 0, gf2.NewVec(n))
	c.WriteRow(0, 1, allOnes(n))
	c.PauseRefresh(40 * time.Minute)
	if c.ReadRow(0, 0).Weight() == 0 {
		t.Fatal("charged anti-cells (logical 0) should decay to logical 1")
	}
	if c.ReadRow(0, 1).Weight() != n {
		t.Fatal("discharged anti-cells (logical 1) must not decay")
	}
}

func TestDecayRepeatability(t *testing.T) {
	c := New(Config{Banks: 1, Rows: 8, CellsPerRow: 512, Seed: 7,
		Retention: RetentionModel{ // VRT disabled for exact repeatability
			MuLog: 8.017, SigmaLog: 0.621, ReferenceTempC: 80, HalvingCelsius: 10,
		}})
	n := c.CellsPerRow()
	c.WriteRow(0, 3, allOnes(n))
	c.PauseRefresh(30 * time.Minute)
	first := c.ReadRow(0, 3)
	second := c.ReadRow(0, 3)
	if !first.Equal(second) {
		t.Fatal("without VRT, repeated reads must see identical decay")
	}
	// Rewriting restores the charge; the same pause decays the same cells.
	c.WriteRow(0, 3, allOnes(n))
	c.PauseRefresh(30 * time.Minute)
	third := c.ReadRow(0, 3)
	if !first.Equal(third) {
		t.Fatal("retention failures must be repeatable across write cycles")
	}
}

func TestDecayMonotoneInWindow(t *testing.T) {
	c := testChip(nil)
	n := c.CellsPerRow()
	var prevErrs int
	for i, pause := range []time.Duration{2, 6, 12, 24, 40} {
		c.WriteRow(0, 0, allOnes(n))
		c.PauseRefresh(time.Duration(pause) * time.Minute)
		errs := n - c.ReadRow(0, 0).Weight()
		if errs < prevErrs {
			t.Fatalf("step %d: error count %d decreased from %d", i, errs, prevErrs)
		}
		prevErrs = errs
	}
	if prevErrs == 0 {
		t.Fatal("no decay at 40 minutes; retention model mistuned")
	}
}

func TestTemperatureAcceleratesDecay(t *testing.T) {
	count := func(temp float64) int {
		c := testChip(nil)
		n := c.CellsPerRow()
		c.SetTemperature(temp)
		total := 0
		for row := 0; row < c.Rows(); row++ {
			c.WriteRow(0, row, allOnes(n))
		}
		c.PauseRefresh(20 * time.Minute)
		for row := 0; row < c.Rows(); row++ {
			total += n - c.ReadRow(0, row).Weight()
		}
		return total
	}
	cold, hot := count(40), count(80)
	if cold >= hot {
		t.Fatalf("decay at 40C (%d) should be rarer than at 80C (%d)", cold, hot)
	}
}

func TestFailureProbabilityMatchesEmpirical(t *testing.T) {
	c := New(Config{Banks: 1, Rows: 128, CellsPerRow: 1024, Seed: 99,
		Retention: RetentionModel{MuLog: 8.017, SigmaLog: 0.621, ReferenceTempC: 80, HalvingCelsius: 10}})
	n := c.CellsPerRow()
	window := 25 * time.Minute
	for row := 0; row < c.Rows(); row++ {
		c.WriteRow(0, row, allOnes(n))
	}
	c.PauseRefresh(window)
	fails := 0
	for row := 0; row < c.Rows(); row++ {
		fails += n - c.ReadRow(0, row).Weight()
	}
	got := float64(fails) / float64(n*c.Rows())
	want := c.cfg.Retention.FailureProbability(window, 80)
	if math.Abs(got-want) > 0.25*want+1e-4 {
		t.Fatalf("empirical BER %v, analytic %v", got, want)
	}
}

func TestBlockLayoutAlternates(t *testing.T) {
	layout := BlockLayout(800, 824, 1224)
	// Row 0 is in the first (true) block; row 800 starts the anti block.
	cases := []struct {
		row  int
		want CellType
	}{
		{0, TrueCell}, {799, TrueCell},
		{800, AntiCell}, {1623, AntiCell},
		{1624, TrueCell}, {2847, TrueCell},
		{2848, AntiCell}, // cycle repeats with flipped phase
	}
	for _, tc := range cases {
		if got := layout(0, tc.row); got != tc.want {
			t.Errorf("row %d: %v, want %v", tc.row, got, tc.want)
		}
	}
	// Roughly half of a long span should be each type.
	trues := 0
	span := 2 * (800 + 824 + 1224)
	for r := 0; r < span; r++ {
		if layout(0, r) == TrueCell {
			trues++
		}
	}
	if trues*2 != span {
		t.Fatalf("true-cell fraction %d/%d, want exactly half", trues, span)
	}
}

func TestTransientErrorsInjected(t *testing.T) {
	c := New(Config{Banks: 1, Rows: 4, CellsPerRow: 4096, Seed: 5, TransientBER: 1e-3})
	n := c.CellsPerRow()
	c.WriteRow(0, 0, gf2.NewVec(n))
	flips := 0
	reads := 200
	for i := 0; i < reads; i++ {
		flips += c.ReadRow(0, 0).Weight()
	}
	want := float64(n*reads) * 1e-3
	if flips == 0 {
		t.Fatal("transient BER 1e-3 produced no flips")
	}
	if math.Abs(float64(flips)-want) > 0.35*want {
		t.Fatalf("transient flips %d, want about %.0f", flips, want)
	}
}

func TestRefreshAllLocksInDecay(t *testing.T) {
	c := New(Config{Banks: 1, Rows: 2, CellsPerRow: 512, Seed: 11,
		Retention: RetentionModel{MuLog: 8.017, SigmaLog: 0.621, ReferenceTempC: 80, HalvingCelsius: 10}})
	n := c.CellsPerRow()
	c.WriteRow(0, 0, allOnes(n))
	c.PauseRefresh(30 * time.Minute)
	decayed := c.ReadRow(0, 0)
	c.RefreshAll()
	// After refresh, reads see the same (locked-in) state with no new decay.
	if !c.ReadRow(0, 0).Equal(decayed) {
		t.Fatal("refresh must lock in decayed state, not restore it")
	}
}

func TestFailureProbabilityMonotone(t *testing.T) {
	m := DefaultRetention()
	prev := 0.0
	for mins := 1; mins <= 30; mins++ {
		p := m.FailureProbability(time.Duration(mins)*time.Minute, 80)
		if p < prev {
			t.Fatalf("BER not monotone at %d minutes", mins)
		}
		prev = p
	}
	lo := m.FailureProbability(2*time.Minute, 80)
	hi := m.FailureProbability(30*time.Minute, 80)
	if lo > 1e-5 {
		t.Errorf("BER at 2 minutes = %v, want ~1e-7", lo)
	}
	if hi < 0.05 {
		t.Errorf("BER at 30 minutes = %v, want >= 5%%", hi)
	}
}

func TestRetentionSecondsDeterministicAndDistinct(t *testing.T) {
	c := testChip(nil)
	a := c.RetentionSecondsOf(0, 3, 17)
	b := c.RetentionSecondsOf(0, 3, 17)
	if a != b {
		t.Fatal("per-cell retention must be deterministic")
	}
	if a <= 0 {
		t.Fatal("retention time must be positive")
	}
	other := c.RetentionSecondsOf(0, 3, 18)
	if a == other {
		t.Fatal("neighboring cells should draw distinct retention times")
	}
}

func TestWeakCellsMonotoneInWindow(t *testing.T) {
	c := testChip(nil)
	short := c.WeakCells(0, 0, 10*time.Minute)
	long := c.WeakCells(0, 0, 60*time.Minute)
	if len(short) > len(long) {
		t.Fatal("weak-cell set must grow with the window")
	}
	inLong := map[int]bool{}
	for _, cell := range long {
		inLong[cell] = true
	}
	for _, cell := range short {
		if !inLong[cell] {
			t.Fatal("weak cells must be nested across windows")
		}
	}
	// Consistency with actual decay: write all ones, pause, read; the
	// failed cells must be exactly the weak cells (up to VRT jitter, which
	// the default test chip config leaves at 2%).
	n := c.CellsPerRow()
	c.WriteRow(0, 0, allOnes(n))
	c.PauseRefresh(60 * time.Minute)
	got := c.ReadRow(0, 0)
	failed := 0
	for i := 0; i < n; i++ {
		if !got.Get(i) {
			failed++
		}
	}
	if failed == 0 || abs(failed-len(long)) > 1+len(long)/5 {
		t.Fatalf("observed %d failures, weak-cell ground truth says %d", failed, len(long))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
