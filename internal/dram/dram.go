// Package dram simulates the raw DRAM substrate the BEER methodology runs
// against: a chip of banks x rows of storage cells whose charge decays over
// time when refresh is paused.
//
// The simulation implements exactly the data-retention error properties the
// paper relies on (§3.2):
//
//  1. Errors are induced and controlled by manipulating the refresh window
//     and ambient temperature (PauseRefresh / SetTemperature).
//  2. Errors are repeatable — each cell has a fixed retention time drawn
//     deterministically from a log-normal distribution keyed by its address —
//     and spatially uniform-random, because the draw is an avalanche hash of
//     the address.
//  3. Errors are unidirectional: only a CHARGED cell can decay, to the
//     DISCHARGED state.
//
// Cells store *charge*; the mapping between charge and logical bit value is
// the cell's encoding convention: a true-cell stores '1' as CHARGED, an
// anti-cell stores '1' as DISCHARGED (§3.1). Real chips mix both; the layout
// is configurable per row to reproduce the per-manufacturer layouts the paper
// measures in §5.1.1.
//
// Fidelity note (see DESIGN.md): the default retention-time distribution is
// compressed relative to a real LPDDR4 chip so that minute-scale refresh
// pauses span raw bit error rates from ~1e-7 up to ~2e-1. A real chip offers
// millions of ECC words, so rare error patterns are still observed; a
// simulated chip offers thousands, so the tail mass is raised to keep the
// same coverage. All of the properties above are preserved.
//
// Entry point: New builds a Chip from a Config (rows, layout, seed);
// internal/ondie layers the secret ECC on top and is what experiments
// actually talk to. Determinism invariant: two chips built from equal
// configs exhibit identical cell retention times forever — the substrate
// carries no global RNG state.
package dram

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"sync"
	"time"

	"repro/internal/gf2"
	"repro/internal/stats"
)

// CellType is a cell's charge-encoding convention.
type CellType uint8

const (
	// TrueCell encodes logical '1' as a charged capacitor.
	TrueCell CellType = iota
	// AntiCell encodes logical '1' as a discharged capacitor.
	AntiCell
)

func (t CellType) String() string {
	if t == TrueCell {
		return "true"
	}
	return "anti"
}

// RetentionModel describes the per-cell retention-time distribution and its
// temperature dependence.
type RetentionModel struct {
	// MuLog and SigmaLog parameterize ln(retention seconds) ~ N(MuLog,
	// SigmaLog) at ReferenceTempC.
	MuLog    float64
	SigmaLog float64
	// ReferenceTempC is the temperature at which MuLog/SigmaLog apply.
	ReferenceTempC float64
	// HalvingCelsius: retention time halves for every this many degrees
	// above the reference temperature (exponential temperature dependence,
	// as in the retention studies the paper builds on).
	HalvingCelsius float64
	// VRTSigmaLog adds per-read log-normal jitter to each cell's effective
	// retention threshold, modeling variable retention time. Zero disables.
	VRTSigmaLog float64
}

// DefaultRetention returns the model used by the simulated chips: tuned so a
// sweep of tREFw from 2 to 30 minutes at 80 degrees C spans BER ~1e-7 to
// ~2e-1 (compressed from real-chip scale; see the package comment).
func DefaultRetention() RetentionModel {
	return RetentionModel{
		MuLog:          8.017, // median retention ~50 minutes at 80C
		SigmaLog:       0.621,
		ReferenceTempC: 80,
		HalvingCelsius: 10,
		VRTSigmaLog:    0.02,
	}
}

// TempFactor returns the retention-time scale factor at the given
// temperature: times shrink as temperature rises.
func (m RetentionModel) TempFactor(tempC float64) float64 {
	return math.Exp2((m.ReferenceTempC - tempC) / m.HalvingCelsius)
}

// CellRetentionSeconds returns the cell's fixed retention time at the
// reference temperature, derived deterministically from the hash h.
func (m RetentionModel) CellRetentionSeconds(h uint64) float64 {
	return stats.LogNormal(stats.Uniform01(h), m.MuLog, m.SigmaLog)
}

// FailureProbability returns the probability that a randomly chosen charged
// cell decays within the given window at the given temperature — the
// analytic raw bit error rate used for experiment planning (§6.3).
func (m RetentionModel) FailureProbability(window time.Duration, tempC float64) float64 {
	eff := window.Seconds() / m.TempFactor(tempC)
	return stats.LogNormalCDF(eff, m.MuLog, m.SigmaLog)
}

// Layout assigns a cell type to each row.
type Layout func(bank, row int) CellType

// AllTrueLayout is the layout of manufacturers A and B in the paper: every
// cell is a true-cell.
func AllTrueLayout(bank, row int) CellType { return TrueCell }

// AllAntiLayout inverts every cell (used in tests).
func AllAntiLayout(bank, row int) CellType { return AntiCell }

// BlockLayout reproduces manufacturer C's measured layout: alternating
// true-/anti-cell blocks whose lengths cycle through the given sizes
// (the paper reports blocks of 800, 824 and 1224 rows).
func BlockLayout(blockLens ...int) Layout {
	if len(blockLens) == 0 {
		panic("dram: BlockLayout needs at least one block length")
	}
	total := 0
	for _, l := range blockLens {
		if l <= 0 {
			panic("dram: block lengths must be positive")
		}
		total += l
	}
	// One full cycle through blockLens covers `total` rows with alternating
	// types; two cycles restore the starting type when len(blockLens) is odd.
	return func(bank, row int) CellType {
		r := row % (2 * total)
		typ := TrueCell
		for {
			for _, l := range blockLens {
				if r < l {
					return typ
				}
				r -= l
				typ ^= 1
			}
		}
	}
}

// Config describes a simulated chip.
type Config struct {
	Banks       int
	Rows        int
	CellsPerRow int
	Seed        uint64
	Layout      Layout
	Retention   RetentionModel
	// TransientBER is the per-cell, per-read probability of an unrelated
	// transient bit flip (soft errors, voltage noise — §5.2). These flips are
	// not sticky and occur in either direction.
	TransientBER float64
}

// vrtJitterBound bounds |NormalInv(Uniform01(h))| for any hash h: Uniform01
// maps into the open interval [0.5/2^52, 1-0.5/2^52], whose normal quantiles
// are about +/-8.3. The bound is deliberately slack (see TestVRTJitterBound)
// so the ReadRow fast path's jitter band stays conservative even against
// last-ulp rounding in Exp/Erfinv.
const vrtJitterBound = 12.0

// Chip is a simulated DRAM chip storing raw cells. It has no ECC; package
// ondie layers on-die ECC on top.
type Chip struct {
	cfg   Config
	tempC float64
	// thermalSeconds is the accumulated refresh-paused time, scaled to
	// reference-temperature seconds. It only advances during PauseRefresh,
	// which makes decay windows per row simply the difference between the
	// current value and the value at the row's last write.
	thermalSeconds float64
	rows           [][]rowState
	readCounter    uint64
	// vrtLo/vrtHi bracket the per-read VRT jitter factor exp(VRTSigmaLog*z)
	// for every reachable z (|z| < vrtJitterBound). ReadRow only evaluates
	// the exact jitter for cells whose retention time falls inside
	// [exposure/vrtHi, exposure/vrtLo]; outside the band the decay decision
	// is provably identical (float multiply and Exp are monotone), which
	// removes the Exp+Erfinv pair from almost every cell read.
	vrtLo, vrtHi float64
	// retKey/ret bind the chip to its shared retention table.
	retKey retKey
	ret    *retTable
}

type rowState struct {
	written bool
	charges gf2.Vec
	// writeStamp is the chip's thermalSeconds at the time of the write.
	writeStamp float64
	// ret points at the row's entry in the process-wide shared retention
	// table (see retTables), bound on first read. Retention is a pure
	// function of (seed, address, model), so the entry never invalidates and
	// is shared by every chip built from an equal config — a serving
	// workload that re-submits the same job spec re-simulates the same chip,
	// and the rebuild used to recompute every cell's log-normal draw.
	ret *rowRet
}

// retKey identifies a chip's immutable retention universe: every cell's
// retention time, and therefore every decay mask, is fully determined by it.
// Layout and TransientBER are deliberately absent — they do not feed the
// retention hash, so chips of different manufacturers share tables.
type retKey struct {
	seed        uint64
	banks, rows int
	cellsPerRow int
	model       RetentionModel
}

// decayMask is the precomputed verdict of one (row, exposure) pair: cells in
// decayed lose their charge for every reachable VRT jitter, cells in
// borderline need the exact per-read jitter draw, and every other cell
// provably survives. Masks make the common read — every cell far from the
// decay threshold — a handful of word ops instead of a loop over charged
// cells.
type decayMask struct {
	decayed    []uint64
	borderline []int32
}

// maxCachedExposures bounds a row's mask cache. Sweeps use a fixed handful
// of refresh windows, so the bound exists only to keep a pathological
// workload (one that never repeats an exposure) from accumulating masks;
// beyond it, masks are computed per read and not retained.
const maxCachedExposures = 64

// rowRet is one row's shared retention state: the per-cell retention times
// and the per-exposure decay masks derived from them.
type rowRet struct {
	ret   []float64
	mu    sync.Mutex
	masks map[float64]*decayMask
}

// maskFor returns the row's decay mask for the given exposure, building and
// caching it on first use. lo/hi are the chip's VRT jitter bounds (1,1 when
// jitter is disabled).
func (rr *rowRet) maskFor(exposure float64, m RetentionModel, lo, hi float64) *decayMask {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if dm, ok := rr.masks[exposure]; ok {
		return dm
	}
	dm := &decayMask{decayed: make([]uint64, (len(rr.ret)+63)/64)}
	for i, tRet := range rr.ret {
		if m.VRTSigmaLog > 0 {
			switch {
			case tRet*hi < exposure:
				dm.decayed[i/64] |= 1 << uint(i%64)
			case tRet*lo >= exposure:
				// survives for every reachable jitter
			default:
				dm.borderline = append(dm.borderline, int32(i))
			}
		} else if tRet < exposure {
			dm.decayed[i/64] |= 1 << uint(i%64)
		}
	}
	if rr.masks == nil {
		rr.masks = make(map[float64]*decayMask)
	}
	if len(rr.masks) < maxCachedExposures {
		rr.masks[exposure] = dm
	}
	return dm
}

// retTable holds the lazily-built rowRet entries of one retention universe.
type retTable struct {
	mu   sync.Mutex
	rows map[uint32]*rowRet
}

// rowOf returns the shared entry for a row, building its retention times on
// first use.
func (t *retTable) rowOf(key retKey, bank, row int) *rowRet {
	idx := uint32(bank*key.rows + row)
	t.mu.Lock()
	defer t.mu.Unlock()
	if rr, ok := t.rows[idx]; ok {
		return rr
	}
	rr := &rowRet{ret: make([]float64, key.cellsPerRow)}
	for i := range rr.ret {
		h := stats.HashN(key.seed, uint64(bank), uint64(row), uint64(i))
		rr.ret[i] = key.model.CellRetentionSeconds(h)
	}
	t.rows[idx] = rr
	return rr
}

// retTables interns retention tables by chip config, capped at
// maxRetTables: a serving workload cycles through a small set of simulated
// chip configs, and the cap bounds memory for everything else. Eviction is
// safe — chips keep direct pointers to the rowRet entries they already
// bound, and a re-built table just recomputes the same pure function.
const maxRetTables = 16

var (
	retTablesMu sync.Mutex
	retTables   = make(map[retKey]*retTable)
)

func sharedRetTable(key retKey) *retTable {
	retTablesMu.Lock()
	defer retTablesMu.Unlock()
	if t, ok := retTables[key]; ok {
		return t
	}
	if len(retTables) >= maxRetTables {
		for k := range retTables {
			delete(retTables, k)
			break
		}
	}
	t := &retTable{rows: make(map[uint32]*rowRet)}
	retTables[key] = t
	return t
}

// New constructs a chip. Zero-valued retention fields fall back to
// DefaultRetention, and a nil layout to AllTrueLayout.
func New(cfg Config) *Chip {
	if cfg.Banks <= 0 || cfg.Rows <= 0 || cfg.CellsPerRow <= 0 {
		panic(fmt.Sprintf("dram: invalid geometry %d banks x %d rows x %d cells",
			cfg.Banks, cfg.Rows, cfg.CellsPerRow))
	}
	if cfg.Layout == nil {
		cfg.Layout = AllTrueLayout
	}
	if cfg.Retention == (RetentionModel{}) {
		cfg.Retention = DefaultRetention()
	}
	c := &Chip{cfg: cfg, tempC: cfg.Retention.ReferenceTempC, vrtLo: 1, vrtHi: 1}
	if vs := cfg.Retention.VRTSigmaLog; vs > 0 {
		c.vrtLo = math.Exp(vs * -vrtJitterBound)
		c.vrtHi = math.Exp(vs * vrtJitterBound)
	}
	c.retKey = retKey{
		seed: cfg.Seed, banks: cfg.Banks, rows: cfg.Rows,
		cellsPerRow: cfg.CellsPerRow, model: cfg.Retention,
	}
	c.ret = sharedRetTable(c.retKey)
	c.rows = make([][]rowState, cfg.Banks)
	for b := range c.rows {
		c.rows[b] = make([]rowState, cfg.Rows)
	}
	return c
}

// Banks returns the bank count.
func (c *Chip) Banks() int { return c.cfg.Banks }

// Rows returns the per-bank row count.
func (c *Chip) Rows() int { return c.cfg.Rows }

// CellsPerRow returns the number of cells in each row.
func (c *Chip) CellsPerRow() int { return c.cfg.CellsPerRow }

// SetTemperature sets the ambient temperature in Celsius for subsequent
// refresh pauses.
func (c *Chip) SetTemperature(celsius float64) { c.tempC = celsius }

// Temperature returns the current ambient temperature.
func (c *Chip) Temperature() float64 { return c.tempC }

// PauseRefresh simulates disabling DRAM refresh for the given duration at
// the current temperature: every written row accumulates decay exposure.
// With refresh running (i.e. outside PauseRefresh) retention times are
// vastly longer than the refresh window, so no decay accumulates.
func (c *Chip) PauseRefresh(d time.Duration) {
	if d < 0 {
		panic("dram: negative pause")
	}
	c.thermalSeconds += d.Seconds() / c.cfg.Retention.TempFactor(c.tempC)
}

func (c *Chip) rowAt(bank, row int) *rowState {
	if bank < 0 || bank >= c.cfg.Banks || row < 0 || row >= c.cfg.Rows {
		panic(fmt.Sprintf("dram: address (%d,%d) out of range", bank, row))
	}
	return &c.rows[bank][row]
}

// CellTypeOf reports the encoding convention of the cells in a row. The BEER
// flow does not use this directly — it rediscovers the layout from error
// behavior (§5.1.1) — but validation code and package ondie may.
func (c *Chip) CellTypeOf(bank, row int) CellType { return c.cfg.Layout(bank, row) }

// WriteRow stores logical bits into the row, converting to charges per the
// row's cell type, and resets the row's decay exposure (a write fully
// restores charge, like a refresh does).
func (c *Chip) WriteRow(bank, row int, bits gf2.Vec) {
	if bits.Len() != c.cfg.CellsPerRow {
		panic(fmt.Sprintf("dram: WriteRow got %d bits, row holds %d cells", bits.Len(), c.cfg.CellsPerRow))
	}
	st := c.rowAt(bank, row)
	if st.written && st.charges.Len() == bits.Len() {
		st.charges.CopyFrom(bits) // reuse the row's storage across rewrites
	} else {
		st.charges = bits.Clone()
	}
	if c.cfg.Layout(bank, row) == AntiCell {
		invert(st.charges)
	}
	st.written = true
	st.writeStamp = c.thermalSeconds
}

// retentionOf returns the row's shared retention entry, binding it on first
// use. The entry comes from the process-wide interned table, so an identical
// chip built earlier (a re-submitted job spec) has already paid for it.
func (c *Chip) retentionOf(bank, row int, st *rowState) *rowRet {
	if st.ret == nil {
		st.ret = c.ret.rowOf(c.retKey, bank, row)
	}
	return st.ret
}

// ReadRow senses the row's cells, applying any retention decay accumulated
// since the last write, plus transient read noise, and converts charges back
// to logical bits. Reading an unwritten row panics: real cells power up in an
// undefined state, and the methodology never reads before writing.
func (c *Chip) ReadRow(bank, row int) gf2.Vec {
	return c.ReadRowInto(bank, row, gf2.NewVec(c.cfg.CellsPerRow))
}

// ReadRowInto is ReadRow writing into caller-owned storage: dst must have
// length CellsPerRow and is returned for convenience. Repeated reads through
// a reused dst allocate nothing, which is what makes tight read loops
// (profile collection, BEEP) memory-bound no longer.
func (c *Chip) ReadRowInto(bank, row int, dst gf2.Vec) gf2.Vec {
	if dst.Len() != c.cfg.CellsPerRow {
		panic(fmt.Sprintf("dram: ReadRowInto got %d bits, row holds %d cells", dst.Len(), c.cfg.CellsPerRow))
	}
	st := c.rowAt(bank, row)
	if !st.written {
		panic(fmt.Sprintf("dram: ReadRow of never-written row (%d,%d)", bank, row))
	}
	c.readCounter++
	exposure := c.thermalSeconds - st.writeStamp
	m := c.cfg.Retention
	dst.CopyFrom(st.charges)
	if exposure > 0 {
		rr := c.retentionOf(bank, row, st)
		// The (row, exposure) decay verdict is precomputed once and shared:
		// clearing the definite-decay mask replaces the per-charged-cell
		// retention comparison (and the jitter band classification — see
		// maskFor) with one word op per 64 cells. Only borderline cells —
		// those whose verdict genuinely depends on the per-read VRT jitter —
		// still pay for the exact hash + NormalInv + Exp evaluation, exactly
		// as the scalar loop did, so results are bit-identical.
		dm := rr.maskFor(exposure, m, c.vrtLo, c.vrtHi)
		dw := dst.Words()
		for wi := range dw {
			dw[wi] &^= dm.decayed[wi]
		}
		if len(dm.borderline) > 0 {
			cw := st.charges.Words()
			for _, bi := range dm.borderline {
				i := int(bi)
				if cw[i/64]>>uint(i%64)&1 == 0 {
					continue // only CHARGED cells can decay
				}
				h := stats.HashN(c.cfg.Seed, uint64(bank), uint64(row), uint64(i))
				jitter := stats.NormalInv(stats.Uniform01(stats.HashN(h, c.readCounter)))
				if rr.ret[i]*math.Exp(m.VRTSigmaLog*jitter) >= exposure {
					continue
				}
				dw[i/64] &^= 1 << uint(i%64)
			}
		}
	}
	if c.cfg.Layout(bank, row) == AntiCell {
		invert(dst)
	}
	if c.cfg.TransientBER > 0 {
		c.injectTransient(dst, bank, row)
	}
	return dst
}

// injectTransient flips each bit independently with probability
// cfg.TransientBER, deterministically keyed by the read counter.
func (c *Chip) injectTransient(bits gf2.Vec, bank, row int) {
	// Sampling every cell would dominate runtime at BERs like 1e-7, so skip
	// ahead geometrically: with probability p per cell, the gap to the next
	// flip is ~ Geometric(p).
	p := c.cfg.TransientBER
	n := bits.Len()
	pos := 0
	for draw := 0; ; draw++ {
		h := stats.HashN(c.cfg.Seed^0xabcdef, uint64(bank), uint64(row), c.readCounter, uint64(draw))
		u := stats.Uniform01(h)
		gap := int(math.Ceil(math.Log(u) / math.Log(1-p)))
		if gap < 1 {
			gap = 1
		}
		pos += gap
		if pos > n {
			return
		}
		bits.Flip(pos - 1)
	}
}

// RetentionSecondsOf returns a cell's fixed retention time in seconds at the
// reference temperature. Ground-truth accessor for validation: real chips do
// not expose per-cell retention, which is why profiling methodologies like
// REAPER and BEEP exist.
func (c *Chip) RetentionSecondsOf(bank, row, cell int) float64 {
	h := stats.HashN(c.cfg.Seed, uint64(bank), uint64(row), uint64(cell))
	return c.cfg.Retention.CellRetentionSeconds(h)
}

// WeakCells returns the cells of a row whose retention time (at reference
// temperature) is below the given window — the cells that will fail if left
// charged for that long. Ground-truth accessor for validation.
func (c *Chip) WeakCells(bank, row int, window time.Duration) []int {
	var weak []int
	for i := 0; i < c.cfg.CellsPerRow; i++ {
		if c.RetentionSecondsOf(bank, row, i) < window.Seconds() {
			weak = append(weak, i)
		}
	}
	return weak
}

// RefreshAll models re-enabling refresh after a pause: any decay that already
// happened is locked in (refresh rewrites whatever charge remains), and
// future reads see no additional decay until refresh is paused again. This
// is implemented by materializing the decayed charges as the stored state.
func (c *Chip) RefreshAll() {
	for b := 0; b < c.cfg.Banks; b++ {
		for r := 0; r < c.cfg.Rows; r++ {
			st := &c.rows[b][r]
			if !st.written {
				continue
			}
			exposure := c.thermalSeconds - st.writeStamp
			if exposure <= 0 {
				continue
			}
			ret := c.retentionOf(b, r, st).ret
			cw := st.charges.Words()
			for wi, w := range cw {
				for w != 0 {
					bit := mathbits.TrailingZeros64(w)
					w &= w - 1
					if ret[wi*64+bit] < exposure {
						cw[wi] &^= 1 << uint(bit)
					}
				}
			}
			st.writeStamp = c.thermalSeconds
		}
	}
}

func invert(v gf2.Vec) {
	w := v.Words()
	for i := range w {
		w[i] = ^w[i]
	}
	if r := v.Len() % 64; r != 0 && len(w) > 0 {
		w[len(w)-1] &= 1<<uint(r) - 1
	}
}
