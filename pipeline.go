package repro

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/einsim"
	"repro/internal/parallel"
	"repro/internal/sat"
)

// Progress types, re-exported from internal/core. A ProgressFunc passed via
// WithProgress receives one ProgressEvent per stage transition, collection
// pass and solver candidate; see the core documentation for the concurrency
// contract.
type (
	// ProgressEvent is one progress report from a running pipeline.
	ProgressEvent = core.Event
	// ProgressFunc consumes pipeline progress events.
	ProgressFunc = core.ProgressFunc
	// PipelineStage identifies a pipeline phase in a ProgressEvent.
	PipelineStage = core.Stage
	// PatternSet selects a test-pattern family (WithPatternSet).
	PatternSet = core.PatternSet
)

// Pipeline stages, in execution order.
const (
	StageDiscover = core.StageDiscover
	StageCollect  = core.StageCollect
	StageSolve    = core.StageSolve
)

// Pattern families (WithPatternSet).
const (
	Set1  = core.Set1
	Set2  = core.Set2
	Set3  = core.Set3
	Set12 = core.Set12
)

// Pipeline is the configured entry point for everything long-running in this
// repository: BEER recovery (Recover), EINSim-style Monte-Carlo simulation
// (Simulate) and BEEP profiling (ProfileWord). A Pipeline is immutable after
// construction and safe for concurrent use; every run takes a
// context.Context and stops promptly — within one collection pass, one
// simulation shard, one profiled bit, or one SAT conflict — when the context
// is cancelled.
//
// Construct with NewPipeline and functional options:
//
//	pipe := repro.NewPipeline(
//		repro.WithFastWindows(),
//		repro.WithWorkers(8),
//		repro.WithProgress(func(ev repro.ProgressEvent) { ... }),
//	)
//	report, err := pipe.Recover(ctx, chips...)
type Pipeline struct {
	engine  *parallel.Engine
	recover RecoverOptions
	beep    BEEPOptions
}

// Option configures a Pipeline (functional options).
type Option func(*Pipeline)

// NewPipeline builds a Pipeline from the paper's default experimental
// configuration (core.DefaultRecoverOptions) plus the given options.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{
		recover: core.DefaultRecoverOptions(),
		beep:    beep.DefaultOptions(),
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.engine == nil {
		p.engine = parallel.Default()
	}
	return p
}

// WithEngine routes the pipeline's sharded work through a specific parallel
// experiment engine (sharing an engine between pipelines shares its worker
// pool and profile caches — what the beerd job service does).
func WithEngine(e *Engine) Option { return func(p *Pipeline) { p.engine = e } }

// WithWorkers gives the pipeline its own engine with the given worker-pool
// width (0 = all cores). Overrides WithEngine.
func WithWorkers(n int) Option { return func(p *Pipeline) { p.engine = parallel.New(n) } }

// WithPatternSet selects the test-pattern family collected during recovery.
// The paper's recommendation: Set1 suffices for full-length codes; Set12
// (the default) uniquely identifies shortened codes too.
func WithPatternSet(ps PatternSet) Option { return func(p *Pipeline) { p.recover.PatternSet = ps } }

// WithWindows sets the refresh-window sweep collected during recovery.
func WithWindows(windows ...time.Duration) Option {
	return func(p *Pipeline) { p.recover.Collect.Windows = append([]time.Duration(nil), windows...) }
}

// sweepTo builds the canonical simulated-chip window sweep: 4-minute steps
// up to maxMinutes — deep enough into the compressed retention distribution
// that thousands of words cover every possible miscorrection.
func sweepTo(maxMinutes int) []time.Duration {
	var windows []time.Duration
	for m := 4; m <= maxMinutes; m += 4 {
		windows = append(windows, time.Duration(m)*time.Minute)
	}
	return windows
}

// WithWindowSweep sets the refresh-window sweep to 4-minute steps up to
// maxMinutes — the canonical sweep for simulated chips, shared by
// WithFastWindows, cmd/beer -max-window and beerd's max_window_minutes.
func WithWindowSweep(maxMinutes int) Option {
	return func(p *Pipeline) { p.recover.Collect.Windows = sweepTo(maxMinutes) }
}

// WithRounds sets how many times the whole window sweep repeats with rotated
// pattern-to-word assignments.
func WithRounds(n int) Option { return func(p *Pipeline) { p.recover.Collect.Rounds = n } }

// WithTemperature sets the ambient temperature of the sweep in Celsius.
func WithTemperature(celsius float64) Option {
	return func(p *Pipeline) { p.recover.Collect.TempC = celsius }
}

// WithFastWindows tunes the sweep for small simulated chips (the
// configuration FastRecovery used to return): the canonical sweep up to 48
// minutes, three rounds.
func WithFastWindows() Option {
	return func(p *Pipeline) {
		p.recover.Collect.Windows = sweepTo(48)
		p.recover.Collect.Rounds = 3
	}
}

// WithMaxRows caps how many true-cell rows recovery collects from (0 = all).
func WithMaxRows(n int) Option { return func(p *Pipeline) { p.recover.MaxRows = n } }

// WithAntiRows additionally collects inverted-pattern profiles from
// anti-cell rows (extension; see core.RecoverOptions.UseAntiRows).
func WithAntiRows() Option { return func(p *Pipeline) { p.recover.UseAntiRows = true } }

// WithLazySolver switches recovery to the CEGAR-style lazy SAT solver.
func WithLazySolver() Option { return func(p *Pipeline) { p.recover.UseLazySolver = true } }

// WithPlanner replaces the exhaustive pattern sweep with the adaptive
// pattern planner (core.Planner): collection proceeds in solver-guided
// batches feeding one persistent incremental SAT session, and stops — fleet
// wide, on multi-chip runs — the moment the ECC function is uniquely
// determined. Report.Plan records patterns used vs. the full sweep.
// Incompatible with WithAntiRows.
func WithPlanner() Option { return func(p *Pipeline) { p.recover.UsePlanner = true } }

// WithPlanOptions tunes the adaptive planner (batch size, pattern budget);
// implies WithPlanner.
func WithPlanOptions(opts PlanOptions) Option {
	return func(p *Pipeline) {
		p.recover.UsePlanner = true
		p.recover.Plan = opts
	}
}

// WithSolverBackend installs a factory for the SAT backend recovery solves
// build on (one fresh backend per solve session). The default is the
// in-process CDCL engine; a factory returning sat.NewDimacs-wrapped
// backends additionally records every CNF for export to external solvers.
func WithSolverBackend(factory func() SolverBackend) Option {
	return func(p *Pipeline) { p.recover.Solve.Backend = factory }
}

// WithExternalSolver routes every recovery solve through an external
// DIMACS solver process (kissat, cadical, this repo's cmd/beersat, ...).
// The binary is resolved per solve session; when it cannot be found the
// pipeline silently falls back to the in-process CDCL engine — the
// degradation contract that keeps solver-less environments working. Use
// NewExternalBackend directly to surface ErrSolverNotFound instead (the
// CLIs validate up front that way).
func WithExternalSolver(cfg ExternalSolverConfig) Option {
	return func(p *Pipeline) {
		p.recover.Solve.Backend = func() SolverBackend {
			ext, err := sat.NewExternal(cfg)
			if err != nil {
				return sat.New()
			}
			return ext
		}
	}
}

// WithPortfolioSolver races nCDCL differently-seeded in-process CDCL
// engines (minimum 1; the first is the vanilla deterministic engine)
// against one external competitor per config on every recovery solve; the
// first definitive answer wins and the losers are cancelled. External
// solvers whose binaries cannot be found are silently left out, so the
// portfolio degrades to the in-process engines alone. Per-competitor
// win/loss/timeout records surface in Result.Stats, progress events and
// beerd's /healthz.
func WithPortfolioSolver(nCDCL int, externals ...ExternalSolverConfig) Option {
	return func(p *Pipeline) {
		p.recover.Solve.Backend = func() SolverBackend {
			pf, err := sat.DefaultPortfolio(nCDCL, externals...)
			if err != nil {
				return sat.New()
			}
			return pf
		}
	}
}

// WithThreshold configures the §5.2 miscorrection filter: minFraction is the
// per-word observation-rate cutoff, minCount the absolute floor.
func WithThreshold(minFraction float64, minCount int64) Option {
	return func(p *Pipeline) {
		p.recover.ThresholdFraction = minFraction
		p.recover.ThresholdMinCount = minCount
	}
}

// WithParityBits fixes the number of parity-check bits r the solver assumes
// (0 selects the minimum for the dataword length, as all publicly known
// on-die ECC designs use).
func WithParityBits(r int) Option {
	return func(p *Pipeline) { p.recover.Solve.ParityBits = r }
}

// WithSolveBudget bounds SAT effort per solve call in conflicts
// (0 = unlimited).
func WithSolveBudget(maxConflicts int64) Option {
	return func(p *Pipeline) { p.recover.Solve.MaxConflicts = maxConflicts }
}

// WithMaxSolutions caps how many candidate codes the solver enumerates
// (0 means 2 — enough to answer "unique or not"; negative means unlimited).
func WithMaxSolutions(n int) Option {
	return func(p *Pipeline) { p.recover.Solve.MaxSolutions = n }
}

// WithProgress registers a callback for pipeline progress events: stage
// entered/completed, collection pass finished, solver candidate found. The
// callback must be fast and safe for concurrent use across jobs sharing it.
func WithProgress(fn ProgressFunc) Option { return func(p *Pipeline) { p.recover.Progress = fn } }

// DiscoveryCache memoizes the §5.1 discovery stage across recoveries of
// identically-configured chips (WithDiscoveryCache); build one with
// NewDiscoveryCache.
type DiscoveryCache = core.DiscoveryCache

// NewDiscoveryCache returns the standard bounded discovery cache (max <= 0
// selects the default capacity).
func NewDiscoveryCache(max int) DiscoveryCache { return core.NewDiscoveryCache(max) }

// WithDiscoveryCache installs a cache for the discovery stage: a chip whose
// layout key (core.LayoutKeyer — the simulated ondie.Chip implements it) was
// discovered before reuses the cached cell classes, rows and word layout
// instead of re-running the §5.1 read sweeps. Share one cache across every
// pipeline a serving process builds — that is what makes repeat submissions
// of the same chip model cheap. Collected raw counts may differ from an
// uncached run at the VRT-noise level (the skipped reads advance the chip's
// read history differently); the §5.2 threshold filter absorbs exactly that
// noise, so recovered codes are unaffected.
func WithDiscoveryCache(c DiscoveryCache) Option {
	return func(p *Pipeline) { p.recover.DiscoveryCache = c }
}

// WithSolveCache installs a solver-result cache consulted between the
// threshold filter and the SAT search: a profile whose canonical hash
// (Profile.Hash) was solved before replays the cached result with zero SAT
// invocations, and fresh successful solves are offered back. The
// content-addressed store (internal/store, what beerd persists to) provides
// the standard implementation. The cache keys on the profile alone — do not
// share one across pipelines with different solver limits (see the
// SolveCache contract).
func WithSolveCache(c SolveCache) Option { return func(p *Pipeline) { p.recover.SolveCache = c } }

// WithRecoverOptions replaces the pipeline's whole recovery configuration
// with a legacy options struct — the migration escape hatch for callers that
// assembled core.RecoverOptions by hand. Options applied after this one
// mutate the replaced configuration.
func WithRecoverOptions(opts RecoverOptions) Option {
	return func(p *Pipeline) {
		progress := p.recover.Progress
		p.recover = opts
		if p.recover.Progress == nil {
			p.recover.Progress = progress
		}
	}
}

// WithNoiseModel perturbs the collected miscorrection profile with a
// per-bit Bernoulli observation-error model (HARP-style false-positive
// injection and true-positive dropout) before solving, and routes the solve
// through the noise-tolerant drop-k engine (core.SolveNoisy) with an
// unlimited drop budget unless WithMaxDrop narrows it. A zero model leaves
// the profile untouched but still exercises the noisy path — useful to
// confirm the confidence-1.0 differential property on clean hardware. The
// adaptive planner (WithPlanner) does not support profile perturbation.
func WithNoiseModel(m NoiseModel) Option {
	return func(p *Pipeline) {
		p.recover.PerturbProfile = m.Perturber()
		if p.recover.Solve.Noisy == nil {
			p.recover.Solve.Noisy = &core.NoisyOptions{MaxDrop: -1}
		}
	}
}

// WithMaxDrop bounds how many profile entries the noise-tolerant solve may
// retract (core.NoisyOptions.MaxDrop): 0 permits none, negative means
// unlimited. Implies the noisy solve path even without WithNoiseModel —
// the configuration for real chips whose profiles may already be noisy.
func WithMaxDrop(k int) Option {
	return func(p *Pipeline) {
		if p.recover.Solve.Noisy == nil {
			p.recover.Solve.Noisy = &core.NoisyOptions{}
		}
		p.recover.Solve.Noisy.MaxDrop = k
	}
}

// WithBEEPOptions configures BEEP profiling (ProfileWord).
func WithBEEPOptions(opts BEEPOptions) Option { return func(p *Pipeline) { p.beep = opts } }

// Engine returns the parallel experiment engine the pipeline runs on.
func (p *Pipeline) Engine() *Engine { return p.engine }

// RecoverOptions returns a copy of the pipeline's effective recovery
// configuration (the legacy struct form, for inspection and for
// ExperimentRuntime-style analysis).
func (p *Pipeline) RecoverOptions() RecoverOptions { return p.recover }

// Recover runs the complete BEER methodology (paper §5) against one or more
// same-model chips: discover the cell and dataword layouts, collect a
// miscorrection profile with crafted test patterns over the refresh-window
// sweep, filter it, and solve for the ECC function with the uniqueness
// check. Multiple chips fan out one-per-worker and their observation counts
// merge before a single solve (§6.3).
//
// Cancelling ctx returns ctx.Err() within one collection round; progress is
// reported via WithProgress.
func (p *Pipeline) Recover(ctx context.Context, chips ...Chip) (*Report, error) {
	if len(chips) == 0 {
		return nil, fmt.Errorf("repro: Recover needs at least one chip")
	}
	return p.engine.Recover(ctx, chips, p.recover)
}

// Observe runs only the experimental front half of recovery against one chip
// (discovery + raw profile collection), leaving thresholding and solving to
// the caller — the building block for custom multi-chip aggregation.
func (p *Pipeline) Observe(ctx context.Context, chip Chip) (*core.ChipObservations, error) {
	return core.Observe(ctx, chip, p.recover)
}

// Solve searches for every ECC function consistent with a miscorrection
// profile (paper §5.3) under the pipeline's solver configuration,
// reporting candidate counts via WithProgress.
func (p *Pipeline) Solve(ctx context.Context, profile *Profile) (*SolveResult, error) {
	solveOpts := p.recover.Solve
	if solveOpts.Progress == nil {
		solveOpts.Progress = p.recover.Progress
	}
	if solveOpts.Noisy != nil {
		return core.SolveNoisy(ctx, profile, solveOpts)
	}
	if p.recover.UseLazySolver {
		return core.SolveLazy(ctx, profile, solveOpts)
	}
	return core.Solve(ctx, profile, solveOpts)
}

// Simulate runs an EINSim-style word-level Monte-Carlo experiment sharded
// across the pipeline's engine; results are bit-identical for any worker
// count. Cancelling ctx stops at the next shard boundary.
func (p *Pipeline) Simulate(ctx context.Context, cfg einsim.Config, seed uint64) (*einsim.Result, error) {
	return p.engine.Simulate(ctx, cfg, seed)
}

// ProfileWord runs BEEP (paper §7.1) against one testable ECC word using a
// known (typically BEER-recovered) code, returning the bit-exact positions
// of the identified pre-correction error-prone cells. Cancelling ctx stops
// at the next target bit.
func (p *Pipeline) ProfileWord(ctx context.Context, code *Code, word beep.WordTester, seed uint64) (*BEEPOutcome, error) {
	prof := beep.NewProfiler(code, p.beep, rand.New(rand.NewPCG(seed, 0xBEEB)))
	return prof.Run(ctx, word)
}
