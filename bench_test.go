// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, at quick scale; use cmd/figures for larger
// scales), plus micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"io"
	"math/rand/v2"
	"testing"
	"time"

	"repro"
	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/figures"
	"repro/internal/gf2"
	"repro/internal/noise"
	"repro/internal/ondie"
	"repro/internal/sat"
)

// benchFigure times one full regeneration of a registered table or figure.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	g, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Run(context.Background(), io.Discard, figures.ScaleQuick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)       { benchFigure(b, "table1") }
func BenchmarkTable2(b *testing.B)       { benchFigure(b, "table2") }
func BenchmarkFig1(b *testing.B)         { benchFigure(b, "fig1") }
func BenchmarkFig3(b *testing.B)         { benchFigure(b, "fig3") }
func BenchmarkFig4(b *testing.B)         { benchFigure(b, "fig4") }
func BenchmarkFig5(b *testing.B)         { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)         { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)         { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)         { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)         { benchFigure(b, "fig9") }
func BenchmarkRuntimeModel(b *testing.B) { benchFigure(b, "runtime") }

// BenchmarkCellLayout times the paper's §5.1.1 discovery experiment.
func BenchmarkCellLayout(b *testing.B) {
	chip := repro.SimulatedChip(repro.MfrC, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	}
}

// BenchmarkWordLayout times the §5.1.2 discovery experiment.
func BenchmarkWordLayout(b *testing.B) {
	chip := repro.SimulatedChip(repro.MfrA, 16, 1)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverEndToEnd times the complete BEER pipeline on a simulated
// chip (discovery + collection + SAT solve).
func BenchmarkRecoverEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chip := repro.SimulatedChip(repro.MfrB, 16, uint64(i))
		rep, err := repro.RecoverECCFunction(chip, repro.FastRecovery())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Result.Unique {
			b.Fatal("recovery not unique")
		}
	}
}

// BenchmarkParallelRecoverEndToEnd times the multi-chip pipeline: profile
// collection fans out across same-model chips on the parallel engine and the
// merged counts feed one solve (paper §6.3).
func BenchmarkParallelRecoverEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chips := repro.SimulatedChips(repro.MfrB, 16, 2, uint64(2*i))
		rep, err := repro.RecoverECCFunctionParallel(chips, repro.FastRecovery())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Result.Unique {
			b.Fatal("recovery not unique")
		}
	}
}

// BenchmarkSolve1Charged times BEER's SAT phase alone at several dataword
// lengths (the quantity behind Figure 6).
func BenchmarkSolve1Charged(b *testing.B) {
	for _, k := range []int{8, 16, 32} {
		k := k
		b.Run("k="+itoa(k), func(b *testing.B) {
			code := ecc.RandomHamming(k, rand.New(rand.NewPCG(1, uint64(k))))
			prof := core.ExactProfile(code, core.OneCharged(k))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), prof, core.SolveOptions{ParityBits: code.ParityBits()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Eager vs. incremental solve pairs (PR 5) ---
// The pairs below land in BENCH_pr5.json: the incremental engine must be no
// slower than eager on the single-solve unique check and faster on the full
// uniqueness-check enumeration, because it defers most multi-CHARGED
// entries and keeps one solver (with its learned clauses) alive across the
// blocking-clause loop.

// benchProfile is the seed-configuration solve workload: a k=16 shortened
// code's exact {1,2}-CHARGED profile (136 entries).
func benchProfile() (*ecc.Code, *core.Profile) {
	code := ecc.RandomHamming(16, rand.New(rand.NewPCG(42, 16)))
	return code, core.ExactProfile(code, core.Set12.Patterns(16))
}

func benchSolve(b *testing.B, maxSol int, solve func(context.Context, *core.Profile, core.SolveOptions) (*core.Result, error)) {
	b.Helper()
	code, prof := benchProfile()
	opts := core.SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: maxSol}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solve(context.Background(), prof, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Unique {
			b.Fatalf("solve not unique (%d candidates)", len(res.Codes))
		}
	}
}

// BenchmarkSolveEager is the historical behavior: every profile entry
// encoded up front, then the standard unique-or-not check.
func BenchmarkSolveEager(b *testing.B) { benchSolve(b, 0, core.Solve) }

// BenchmarkSolveIncremental is the same check on the incremental engine
// (deferred entries, persistent solver).
func BenchmarkSolveIncremental(b *testing.B) { benchSolve(b, 0, core.SolveIncremental) }

// BenchmarkUniquenessLoopEager exhausts the whole model space (the
// uniqueness blocking-clause loop runs until UNSAT) with eager encoding.
func BenchmarkUniquenessLoopEager(b *testing.B) { benchSolve(b, -1, core.Solve) }

// BenchmarkUniquenessLoopIncremental is the same exhaustion on the
// incremental engine.
func BenchmarkUniquenessLoopIncremental(b *testing.B) { benchSolve(b, -1, core.SolveIncremental) }

// BenchmarkRecoverFullSweep / BenchmarkRecoverPlanner are the end-to-end
// pair: exhaustive-sweep recovery vs. the adaptive planner, which stops
// collecting the moment the code is uniquely determined.
func BenchmarkRecoverFullSweep(b *testing.B) { benchRecoverPlanned(b, false) }

func BenchmarkRecoverPlanner(b *testing.B) { benchRecoverPlanned(b, true) }

func benchRecoverPlanned(b *testing.B, planned bool) {
	b.Helper()
	opts := []repro.Option{repro.WithFastWindows()}
	if planned {
		opts = append(opts, repro.WithPlanner())
	}
	pipe := repro.NewPipeline(opts...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chip := repro.SimulatedChip(repro.MfrB, 16, uint64(i))
		rep, err := pipe.Recover(context.Background(), chip)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Result.Unique {
			b.Fatal("recovery not unique")
		}
		if planned && rep.Plan.PatternsUsed >= rep.Plan.PatternsFull {
			b.Fatalf("planner used the full sweep (%d/%d)", rep.Plan.PatternsUsed, rep.Plan.PatternsFull)
		}
	}
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	return string(buf[i:])
}

// BenchmarkExactProfile times the analytic miscorrection-profile oracle.
func BenchmarkExactProfile(b *testing.B) {
	code := ecc.RandomHamming(128, rand.New(rand.NewPCG(2, 2)))
	patterns := core.Set12.Patterns(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExactProfile(code, patterns)
	}
}

// BenchmarkEncodeDecode times the on-die ECC hot path for the paper's
// (136,128) shape.
func BenchmarkEncodeDecode(b *testing.B) {
	code := ecc.RandomHamming(128, rand.New(rand.NewPCG(3, 3)))
	d := gf2.NewVec(128)
	for i := 0; i < 128; i += 3 {
		d.Set(i, true)
	}
	cw := code.Encode(d)
	bad := cw.Clone()
	bad.Flip(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Encode(d)
		code.Decode(bad)
	}
}

// BenchmarkChipSweep times one full write/pause/read sweep of a simulated
// chip through the on-die ECC path.
func BenchmarkChipSweep(b *testing.B) {
	chip := ondie.MustNew(ondie.Config{
		Manufacturer: ondie.MfrA, DataBits: 128, Banks: 1, Rows: 64, RegionsPerRow: 8, Seed: 9,
	})
	data := make([]byte, chip.DataBytesPerRow())
	for i := range data {
		data[i] = 0xFF
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < chip.Rows(); r++ {
			chip.WriteRow(0, r, data)
		}
		chip.PauseRefresh(10 * time.Minute)
		for r := 0; r < chip.Rows(); r++ {
			chip.ReadRow(0, r)
		}
	}
}

// BenchmarkEinsimWords measures word-level simulation throughput.
func BenchmarkEinsimWords(b *testing.B) {
	code := ecc.SequentialHamming(128)
	rng := rand.New(rand.NewPCG(4, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := einsim.Run(einsim.Config{
			Code: code, Pattern: einsim.PatternAllOnes, Model: einsim.ModelUniform,
			RBER: 1e-3, Words: 1000,
		}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBEEPWord times profiling one 63-bit word with two passes.
func BenchmarkBEEPWord(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	code := ecc.RandomHamming(57, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		word := &beep.SimWord{Code: code, ErrorCells: []int{3, 17, 40}, PErr: 1, Rng: rng}
		prof := beep.NewProfiler(code, beep.Options{Passes: 2, TrialsPerPattern: 1, WorstCaseNeighbors: true}, rng)
		prof.Run(context.Background(), word)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationPatternSets compares SAT solve cost of 1-CHARGED vs
// {1,2}-CHARGED constraint sets for the same shortened code.
func BenchmarkAblationPatternSets(b *testing.B) {
	code := ecc.RandomHamming(16, rand.New(rand.NewPCG(6, 6)))
	for _, set := range []core.PatternSet{core.Set1, core.Set12} {
		set := set
		b.Run(set.String(), func(b *testing.B) {
			prof := core.ExactProfile(code, set.Patterns(16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), prof, core.SolveOptions{ParityBits: code.ParityBits()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThreshold compares collection with and without transient
// noise, quantifying the threshold filter's cost-free robustness.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, tber := range []float64{0, 1e-6} {
		tber := tber
		name := "clean"
		if tber > 0 {
			name = "noisy"
		}
		b.Run(name, func(b *testing.B) {
			chip := ondie.MustNew(ondie.Config{
				Manufacturer: ondie.MfrA, DataBits: 16, Banks: 1, Rows: 64,
				RegionsPerRow: 8, Seed: 7, TransientBER: tber,
			})
			classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
			rows := core.TrueRows(classes)
			layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
			if err != nil {
				b.Fatal(err)
			}
			opts := core.CollectOptions{
				Windows: []time.Duration{20 * time.Minute, 40 * time.Minute},
				TempC:   80, Rounds: 1,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts, err := core.CollectCounts(context.Background(), chip, rows, layout, core.OneCharged(16), opts)
				if err != nil {
					b.Fatal(err)
				}
				counts.Threshold(1e-4, 2)
			}
		})
	}
}

// BenchmarkAblationCrafter compares BEEP's SAT pattern crafting (the paper's
// approach) against the linear-algebra reformulation of §7.3.
func BenchmarkAblationCrafter(b *testing.B) {
	for _, crafter := range []beep.Crafter{beep.CrafterSAT, beep.CrafterLinear} {
		crafter := crafter
		b.Run(crafter.String(), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(8, 8))
			code := ecc.RandomHamming(57, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				word := &beep.SimWord{Code: code, ErrorCells: []int{5, 22, 50}, PErr: 1, Rng: rng}
				prof := beep.NewProfiler(code, beep.Options{
					Passes: 1, TrialsPerPattern: 1, WorstCaseNeighbors: true, Crafter: crafter,
				}, rng)
				prof.Run(context.Background(), word)
			}
		})
	}
}

// --- Exact vs. noisy drop-k solve pair (PR 7) ---
// BenchmarkNoisyRecoverExact / BenchmarkNoisyRecoverPBEM75 are the
// confidence-weighted solver's bench-gate pair on the seed-configuration
// profile (k=16, {1,2}-CHARGED, 136 entries): the clean entry bounds the
// overhead of the guard-literal machinery against BenchmarkSolveIncremental
// on the same profile, and the PBEM_75 entry (HARP's 75%-observation
// dropout model) tracks the cost of the core-guided retraction loop under
// heavy corruption. Both run under the same drop budget: the clean solve
// never consumes it, while PBEM_75 corrupts far more entries than any
// budget absorbs, so that leg times retraction-to-honest-UNSAT (unbounded
// retraction on this profile runs for tens of seconds — too slow and too
// noisy for a -benchtime 1x gate).
func benchNoisyRecover(b *testing.B, model *noise.Model) {
	b.Helper()
	code, prof := benchProfile()
	if model != nil {
		prof, _ = model.Perturb(prof)
	}
	opts := core.SolveOptions{
		ParityBits: code.ParityBits(),
		Noisy:      &core.NoisyOptions{MaxDrop: 24},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.SolveNoisy(context.Background(), prof, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Noise == nil {
			b.Fatal("noisy solve reported no noise info")
		}
		if model == nil && (!res.Unique || res.Noise.Confidence != 1.0) {
			b.Fatalf("clean profile solved with %d candidates, confidence %v",
				len(res.Codes), res.Noise.Confidence)
		}
		if model != nil && len(res.Codes) != 0 {
			b.Fatalf("PBEM_75 corruption under a %d-entry budget must report clean UNSAT, got %d candidates",
				opts.Noisy.MaxDrop, len(res.Codes))
		}
	}
}

func BenchmarkNoisyRecoverExact(b *testing.B) { benchNoisyRecover(b, nil) }

func BenchmarkNoisyRecoverPBEM75(b *testing.B) {
	m := noise.PBEM75
	m.Seed = 7
	benchNoisyRecover(b, &m)
}

// --- Single-engine vs. portfolio backend pair (PR 8) ---
// BenchmarkSolveBackendCDCL / BenchmarkSolveBackendPortfolio bound the
// portfolio's overhead on the seed-configuration profile (k=16,
// {1,2}-CHARGED): racing three differently-seeded in-process CDCL engines
// costs goroutine setup plus redundant work by the losers, and the gate
// keeps that within the ordinary regression threshold of the
// single-engine entry. External competitors are deliberately absent —
// process spawn costs would swamp the comparison and CI machines may not
// carry solver binaries.
func benchSolveBackend(b *testing.B, factory func() sat.Backend) {
	b.Helper()
	code, prof := benchProfile()
	opts := core.SolveOptions{ParityBits: code.ParityBits(), Backend: factory}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.SolveIncremental(context.Background(), prof, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Unique {
			b.Fatalf("solve not unique (%d candidates)", len(res.Codes))
		}
	}
}

func BenchmarkSolveBackendCDCL(b *testing.B) { benchSolveBackend(b, nil) }

func BenchmarkSolveBackendPortfolio(b *testing.B) {
	benchSolveBackend(b, func() sat.Backend {
		p, err := sat.DefaultPortfolio(3)
		if err != nil {
			panic(err)
		}
		return p
	})
}
