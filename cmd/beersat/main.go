// Command beersat is this repo's in-process CDCL engine packaged as a
// conventional command-line DIMACS solver: it reads a CNF file (or stdin),
// prints "s SATISFIABLE"/"s UNSATISFIABLE" plus "v" model lines, and exits
// 10/20 in the standard convention. It exists so the external-process
// backend (sat.External) and the portfolio always have a real solver
// binary available on any machine that can build the repo — and as the
// dogfooding target for the DIMACS round-trip: beersat consumes exactly
// what sat.WriteDIMACS produces.
//
// Usage:
//
//	beersat [-t seconds] [file.cnf]
package main

import (
	"os"

	"repro/internal/sat"
)

func main() {
	os.Exit(sat.SolverMain(os.Args[1:], os.Stdout, os.Stderr))
}
