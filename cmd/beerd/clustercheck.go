package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// runClusterCheck is `beerd -clustercheck`, the cluster acceptance smoke
// (make cluster-smoke / CI): this process becomes the coordinator and
// spawns two real worker processes of the same binary, then drives
// cluster.Smoke against the fleet — ≥8 distinct-profile jobs with one
// worker SIGKILLed mid-run (failover must be observed), followed by a
// duplicate-profile phase that must incur zero additional SAT solver
// invocations. Three OS processes, real sockets, real deaths.
func runClusterCheck(hub *obs.Hub, jobs int, beat, ttl time.Duration) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd clustercheck:", err)
		return 1
	}

	st := store.New(store.NewMemBackend())
	// Coordinator and service share the process hub, so the coordinator's
	// dispatch counters land on the same /metrics the smoke scrapes.
	coord := cluster.NewCoordinator(st, cluster.CoordinatorConfig{
		HeartbeatEvery: beat,
		TTL:            ttl,
		Obs:            hub,
	})
	srv := service.New(repro.NewEngine(0),
		service.WithStore(st), service.WithExecutor(coord), service.WithObservability(hub))
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd clustercheck:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: hub.Middleware(coord.Handler(srv.Handler())), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "beerd clustercheck:", err)
		}
	}()
	defer httpSrv.Close()
	coordURL := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Spawn the worker fleet: real beerd processes joining over loopback.
	procs := make(map[string]*exec.Cmd)
	for _, id := range []string{"w1", "w2"} {
		cmd := exec.CommandContext(ctx, exe,
			"-role", "worker",
			"-addr", "127.0.0.1:0",
			"-join", coordURL,
			"-worker-id", id,
			"-max-jobs", "4",
			"-heartbeat", beat.String(),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "beerd clustercheck: starting %s: %v\n", id, err)
			return 1
		}
		procs[id] = cmd
		defer func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}()
	}
	log.Printf("beerd clustercheck: coordinator %s, workers w1 (pid %d) + w2 (pid %d)",
		coordURL, procs["w1"].Process.Pid, procs["w2"].Process.Pid)

	err = cluster.Smoke(ctx, cluster.SmokeConfig{
		BaseURL: coordURL,
		Jobs:    jobs,
		Log:     log.Printf,
		KillWorker: func(id string) error {
			cmd, ok := procs[id]
			if !ok {
				return fmt.Errorf("unknown worker %q", id)
			}
			log.Printf("beerd clustercheck: SIGKILLing %s (pid %d)", id, cmd.Process.Pid)
			if err := cmd.Process.Kill(); err != nil {
				return err
			}
			_ = cmd.Wait()
			return nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd clustercheck FAILED:", err)
		return 1
	}
	fmt.Printf("beerd clustercheck OK: %d jobs + %d duplicates across 2 workers, 1 killed mid-run, failover observed, zero duplicate solver invocations\n", jobs, jobs)
	return 0
}
