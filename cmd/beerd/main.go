// Command beerd serves BEER as a job service: an HTTP/JSON API that accepts
// long-running recovery and simulation jobs, multiplexes them onto one
// shared parallel experiment engine, streams per-stage progress through
// status polls, and hands back recovered ECC functions.
//
// Usage:
//
//	beerd -addr :8080 -workers 0
//	beerd -store /var/lib/beerd      # durable jobs + code registry (JSON on disk)
//	beerd -selfcheck                 # start an ephemeral server, run the smoke suite, exit
//
// API (full schemas in docs/API.md; see internal/service):
//
//	POST   /api/v1/jobs             {"type":"recover","manufacturer":"B","k":16,"verify":true}
//	GET    /api/v1/jobs             list job statuses
//	GET    /api/v1/jobs/{id}        status + per-stage progress
//	GET    /api/v1/jobs/{id}/result recovered H matrix / simulation counters
//	DELETE /api/v1/jobs/{id}        cancel
//	GET    /codes                   registry of recovered ECC functions
//	GET    /codes/{hash}            one registry record, all candidates
//	GET    /healthz                 liveness + job/solver counters
//
// With -store, jobs and recovered codes persist across restarts: completed
// jobs replay from disk, jobs interrupted by a shutdown or crash resume, and
// a submission whose miscorrection profile was solved before returns the
// cached result without running the SAT solver. Without it the same
// machinery runs on an in-memory store scoped to the process.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight jobs are
// cancelled (they stop within one collection pass) and persisted as
// resumable before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "shared engine worker-pool width (0 = all cores)")
		storeDir  = flag.String("store", "", "directory for the durable job + code store (empty = in-memory)")
		selfcheck = flag.Bool("selfcheck", false, "start an ephemeral server, run the smoke suite against it, and exit")
		smokeJobs = flag.Int("selfcheck-jobs", 8, "concurrent recovery jobs the selfcheck submits")
	)
	flag.Parse()

	var opts []service.Option
	if *storeDir != "" {
		backend, err := store.NewFileBackend(*storeDir)
		if err != nil {
			log.Fatalf("beerd: %v", err)
		}
		opts = append(opts, service.WithStore(store.New(backend)))
	}
	srv := service.New(repro.NewEngine(*workers), opts...)
	defer srv.Store().Close()

	if *selfcheck {
		os.Exit(runSelfcheck(srv, *smokeJobs))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("beerd: listening on %s (%d workers, store %s)", *addr, srv.Engine().Workers(), srv.Store().Describe())

	select {
	case err := <-errCh:
		log.Fatalf("beerd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("beerd: shutting down, cancelling running jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("beerd: http shutdown: %v", err)
	}
	srv.Close()
	log.Printf("beerd: bye")
}

// runSelfcheck boots an ephemeral server on a loopback port and drives the
// same smoke suite CI runs (make serve-smoke), returning the exit code.
func runSelfcheck(srv *service.Server, jobs int) int {
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "beerd:", err)
		}
	}()
	defer httpSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	base := "http://" + ln.Addr().String()
	log.Printf("beerd selfcheck: serving on %s, submitting %d concurrent recovery jobs", base, jobs)
	err = service.Smoke(ctx, service.SmokeConfig{
		BaseURL: base,
		Jobs:    jobs,
		Log:     log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd selfcheck FAILED:", err)
		return 1
	}
	fmt.Printf("beerd selfcheck OK: %d concurrent jobs recovered and verified\n", jobs)
	return 0
}
