// Command beerd serves BEER as a job service: an HTTP/JSON API that accepts
// long-running recovery and simulation jobs, streams per-stage progress
// through status polls, and hands back recovered ECC functions. It runs in
// three roles:
//
//	beerd                                        # standalone: jobs run on the local engine
//	beerd -role coordinator -addr :8080          # cluster front end: jobs shard across workers
//	beerd -role worker -join http://host:8080    # fleet member: registers, heartbeats, executes
//
// Usage:
//
//	beerd -addr :8080 -workers 0
//	beerd -store /var/lib/beerd          # durable jobs + code registry (JSON on disk)
//	beerd -max-jobs 4                    # admission cap: 429 + Retry-After when saturated
//	beerd -selfcheck                     # ephemeral server + smoke suite, then exit
//	beerd -clustercheck                  # 1 coordinator + 2 worker processes + kill-one smoke, then exit
//	beerd -portfolio 3 -solver "kissat -q"  # recovery solves race 3 CDCL engines vs. kissat
//
// API (full schemas in docs/API.md; see internal/service and
// internal/cluster):
//
//	POST   /api/v1/jobs             {"type":"recover","manufacturer":"B","k":16,"verify":true}
//	                                ("plan":true runs the adaptive pattern planner: collection
//	                                stops the moment the code is unique; the result reports
//	                                patterns_used vs. patterns_full and solver counters)
//	GET    /api/v1/jobs             list job statuses
//	GET    /api/v1/jobs/{id}        status + per-stage progress + live solver counters
//	                                (+ worker/dispatches in cluster)
//	GET    /api/v1/jobs/{id}/result recovered H matrix / simulation counters
//	DELETE /api/v1/jobs/{id}        cancel
//	GET    /api/v1/jobs/{id}/events live status stream (Server-Sent Events)
//	GET    /codes                   registry of recovered ECC functions
//	GET    /codes/{hash}            one registry record, all candidates
//	GET    /healthz                 liveness + job/solver/cluster counters
//	GET    /metrics                 Prometheus text exposition (every role)
//	GET    /debug/traces            recent trace spans (ring buffer, JSON)
//	/cluster/v1/*                   coordinator control plane (register, heartbeat, workers, codes)
//
// Observability: every role serves GET /metrics and GET /debug/traces;
// -log-format selects text or JSON structured logs (trace and job IDs on
// every request line); -debug-addr starts a second, private listener with
// net/http/pprof next to the same metrics and traces.
//
// A coordinator shards jobs across its registered workers by consistent
// hashing on the job's miscorrection-profile hash, fails jobs over when a
// worker dies, spills on 429 backpressure, and aggregates every worker's
// recovered codes into its own GET /codes.
//
// SIGINT/SIGTERM shut every role down gracefully: the server stops
// accepting jobs (503), drains in-flight ones up to -drain-timeout while
// status polls keep answering, persists what remains as resumable, and — in
// the worker role — deregisters from the coordinator first so nothing new
// is dispatched its way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "engine worker-pool width (0 = all cores)")
		storeDir = flag.String("store", "", "directory for the durable job + code store (empty = in-memory)")
		role     = flag.String("role", "standalone", "process role: standalone, coordinator or worker")
		join     = flag.String("join", "", "coordinator URL to join (worker role)")
		advert   = flag.String("advertise", "", "base URL the coordinator should dispatch to (worker role; default http://127.0.0.1:<port>)")
		workerID = flag.String("worker-id", "", "stable worker identity on the hash ring (default: random)")
		maxJobs  = flag.Int("max-jobs", 0, "admission cap on concurrently executing jobs (0 = unlimited)")
		solver   = flag.String("solver", "", `external DIMACS solver argv for recovery solves, e.g. "kissat -q" (standalone/worker roles)`)
		solverTO = flag.Duration("solver-timeout", 2*time.Minute, "wall-clock budget per external solver invocation; timed-out runs are killed and discarded")
		portN    = flag.Int("portfolio", 0, "race N in-process CDCL engines (plus -solver, if set) per recovery solve; first answer wins")
		drain    = flag.Duration("drain-timeout", 45*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
		beat     = flag.Duration("heartbeat", cluster.DefaultHeartbeatEvery, "cluster heartbeat interval (coordinator hands it to workers)")
		ttl      = flag.Duration("ttl", cluster.DefaultTTL, "cluster liveness TTL (coordinator role)")
		logFmt   = flag.String("log-format", "text", "structured log format: text or json")
		dbgAddr  = flag.String("debug-addr", "", "private listen address for pprof + metrics + traces (empty = off)")

		selfcheck  = flag.Bool("selfcheck", false, "start an ephemeral server, run the smoke suite against it, and exit")
		smokeJobs  = flag.Int("selfcheck-jobs", 8, "concurrent recovery jobs the selfcheck submits")
		clustCheck = flag.Bool("clustercheck", false, "spin up a local 1-coordinator/2-worker cluster, run the kill-one smoke, and exit")
		clustJobs  = flag.Int("clustercheck-jobs", 8, "distinct-profile jobs per clustercheck phase")
	)
	flag.Parse()

	logger, err := newLogger(*logFmt)
	if err != nil {
		log.Fatalf("beerd: %v", err)
	}
	hub := obs.NewHub(logger)

	if *clustCheck {
		// The check wants a fast liveness clock, but an explicit flag — an
		// operator slowing things down to debug — always wins.
		beatSet, ttlSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "heartbeat":
				beatSet = true
			case "ttl":
				ttlSet = true
			}
		})
		if !beatSet {
			*beat = 250 * time.Millisecond
		}
		if !ttlSet {
			*ttl = time.Second
		}
		os.Exit(runClusterCheck(hub, *clustJobs, *beat, *ttl))
	}

	st := store.New(store.NewMemBackend())
	if *storeDir != "" {
		backend, err := store.NewFileBackend(*storeDir)
		if err != nil {
			fatal(logger, err)
		}
		st = store.New(backend)
	}
	opts := []service.Option{service.WithStore(st), service.WithObservability(hub)}
	if *maxJobs > 0 {
		opts = append(opts, service.WithMaxConcurrent(*maxJobs))
	}
	if solverOpt, err := solverBackendOption(*solver, *solverTO, *portN); err != nil {
		fatal(logger, err)
	} else if solverOpt != nil {
		// Backend selection is a per-process deployment choice: it applies
		// to jobs this process executes locally (standalone and worker
		// roles). A coordinator dispatches jobs elsewhere, so its workers
		// each pick their own backend from their own flags.
		opts = append(opts, service.WithSolverOptions(solverOpt))
	}

	if *selfcheck {
		// Selfcheck never uses -addr (it serves on an ephemeral loopback
		// port), so it must run before the listener binds.
		srv := service.New(repro.NewEngine(*workers), opts...)
		defer srv.Store().Close()
		os.Exit(runSelfcheck(srv, *smokeJobs))
	}

	// The listener comes first so the worker role can derive a dialable
	// advertise URL from the bound port before anything registers.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, err)
	}

	var (
		coord     *cluster.Coordinator
		agent     *cluster.Worker
		workerCfg *cluster.WorkerConfig
	)
	switch *role {
	case "standalone":
	case "coordinator":
		// The coordinator shares the server's store, so codes synced from
		// workers land on the public GET /codes.
		coord = cluster.NewCoordinator(st, cluster.CoordinatorConfig{
			HeartbeatEvery: *beat,
			TTL:            *ttl,
			Obs:            hub,
		})
		opts = append(opts, service.WithExecutor(coord))
	case "worker":
		if *join == "" {
			fatal(logger, errors.New("-role worker requires -join <coordinator-url>"))
		}
		id := *workerID
		if id == "" {
			id = cluster.RandomWorkerID()
		}
		advertise := *advert
		if advertise == "" {
			advertise = defaultAdvertise(ln)
		}
		workerCfg = &cluster.WorkerConfig{
			ID:             id,
			CoordinatorURL: *join,
			AdvertiseURL:   advertise,
			Capacity:       *maxJobs,
			HeartbeatEvery: *beat,
			Obs:            hub,
		}
		// The remote solve-cache tier is wired at construction so even the
		// first job consults the fleet registry before solving.
		opts = append(opts, service.WithSolveCacheTier(cluster.NewRemoteCache(*join, id)))
	default:
		fatal(logger, fmt.Errorf("unknown role %q (want standalone, coordinator or worker)", *role))
	}

	srv := service.New(repro.NewEngine(*workers), opts...)
	defer srv.Store().Close()

	handler := srv.Handler()
	switch {
	case coord != nil:
		handler = coord.Handler(handler)
	case workerCfg != nil:
		// Workers expose the raw registry read endpoints so the
		// coordinator's pull sweep can reconcile every record.
		handler = cluster.RegistryHandler(st, handler)
	}
	// Every request — service API and cluster control plane alike — passes
	// the hub middleware: request metrics, traceparent extraction, one
	// structured log line per request.
	httpSrv := &http.Server{
		Handler:           hub.Middleware(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *dbgAddr != "" {
		dln, err := net.Listen("tcp", *dbgAddr)
		if err != nil {
			fatal(logger, fmt.Errorf("-debug-addr: %w", err))
		}
		dbgSrv := &http.Server{Handler: hub.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbgSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		defer dbgSrv.Close()
		logger.Info("debug listener up", "addr", dln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if workerCfg != nil {
		var err error
		agent, err = cluster.NewWorker(*workerCfg, srv)
		if err != nil {
			fatal(logger, err)
		}
		go func() {
			if err := agent.Run(ctx); err != nil && ctx.Err() == nil {
				logger.Error("cluster agent stopped", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("beerd listening", "role", *role, "addr", ln.Addr().String(),
		"engine_workers", srv.Engine().Workers(), "store", srv.Store().Describe(),
		"executor", srv.Executor().Describe())

	select {
	case err := <-errCh:
		fatal(logger, err)
	case <-ctx.Done():
	}
	shutdown(logger, srv, httpSrv, agent, *drain)
}

// newLogger builds the process logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// fatal logs err at error level and exits, the slog analogue of log.Fatalf.
func fatal(logger *slog.Logger, err error) {
	logger.Error("beerd exiting", "err", err)
	os.Exit(1)
}

// shutdown runs the graceful sequence: deregister (worker), drain while
// status polls keep answering, stop the listener, cancel what remains.
func shutdown(logger *slog.Logger, srv *service.Server, httpSrv *http.Server, agent *cluster.Worker, drainTimeout time.Duration) {
	if agent != nil {
		dctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := agent.Deregister(dctx); err != nil {
			logger.Warn("deregister failed", "err", err)
		}
		cancel()
	}
	logger.Info("draining — new submissions get 503, in-flight jobs finish", "timeout", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete; cancelling the rest (they persist as resumable)", "err", err)
	} else {
		logger.Info("drained cleanly")
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown failed", "err", err)
	}
	srv.Close()
	logger.Info("bye")
}

// solverBackendOption turns the -solver/-solver-timeout/-portfolio flags
// into a recovery-pipeline option, or nil when the defaults apply. The
// external binaries are validated up front so a typo'd solver name fails
// at daemon startup instead of silently degrading every job to the
// in-process engine.
func solverBackendOption(argv string, timeout time.Duration, portfolio int) (repro.Option, error) {
	var externals []repro.ExternalSolverConfig
	if argv != "" {
		externals = append(externals, repro.ExternalSolverConfig{
			Argv:    strings.Fields(argv),
			Timeout: timeout,
		})
	}
	switch {
	case portfolio > 0:
		factory, err := repro.NewPortfolioBackend(portfolio, externals...)
		if err != nil {
			return nil, fmt.Errorf("-portfolio: %w", err)
		}
		return repro.WithSolverBackend(factory), nil
	case len(externals) == 1:
		factory, err := repro.NewExternalBackend(externals[0])
		if err != nil {
			return nil, fmt.Errorf("-solver: %w", err)
		}
		return repro.WithSolverBackend(factory), nil
	}
	return nil, nil
}

// defaultAdvertise derives a dialable loopback URL from the bound listener
// (the listen address ":8080" binds every interface; dispatchers need a
// concrete host).
func defaultAdvertise(ln net.Listener) string {
	addr := ln.Addr().String()
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if host == "" || host == "::" || host == "0.0.0.0" {
			return "http://127.0.0.1:" + port
		}
		if strings.Contains(host, ":") {
			return "http://[" + host + "]:" + port
		}
		return "http://" + host + ":" + port
	}
	return "http://" + addr
}

// runSelfcheck boots an ephemeral server on a loopback port and drives the
// same smoke suite CI runs (make serve-smoke), returning the exit code.
func runSelfcheck(srv *service.Server, jobs int) int {
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "beerd:", err)
		}
	}()
	defer httpSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	base := "http://" + ln.Addr().String()
	log.Printf("beerd selfcheck: serving on %s, submitting %d concurrent recovery jobs", base, jobs)
	err = service.Smoke(ctx, service.SmokeConfig{
		BaseURL: base,
		Jobs:    jobs,
		Log:     log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerd selfcheck FAILED:", err)
		return 1
	}
	fmt.Printf("beerd selfcheck OK: %d concurrent jobs recovered and verified\n", jobs)
	return 0
}
