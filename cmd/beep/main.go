// Command beep demonstrates BEEP (paper §7.1): profiling the bit-exact
// locations of pre-correction error-prone DRAM cells using a known ECC
// function.
//
// Usage:
//
//	beep -demo -n 63 -errors 4            # one word, verbose
//	beep -n 127 -errors 10 -perr 0.5 -words 20   # Monte-Carlo success rate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/beep"
	"repro/internal/ecc"
)

func main() {
	var (
		n          = flag.Int("n", 63, "codeword length (2^r - 1: 31, 63, 127, 255)")
		errorCells = flag.Int("errors", 4, "error-prone cells injected per word")
		perr       = flag.Float64("perr", 1.0, "per-test failure probability of each injected cell")
		passes     = flag.Int("passes", 2, "profiling passes over the codeword")
		words      = flag.Int("words", 10, "Monte-Carlo words for success-rate mode")
		demo       = flag.Bool("demo", false, "profile a single word verbosely")
		seed       = flag.Uint64("seed", 7, "random seed")
		crafter    = flag.String("crafter", "sat", "pattern crafter: sat (paper) or linear (fast, sec. 7.3 idea)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var craft beep.Crafter
	switch *crafter {
	case "sat":
		craft = beep.CrafterSAT
	case "linear":
		craft = beep.CrafterLinear
	default:
		fmt.Fprintln(os.Stderr, "beep: -crafter must be sat or linear")
		os.Exit(2)
	}
	if *demo {
		runDemo(ctx, *n, *errorCells, *perr, *passes, *seed)
		return
	}
	res, err := beep.Evaluate(ctx, beep.EvalConfig{
		CodewordBits:     *n,
		ErrorsPerWord:    *errorCells,
		PErr:             *perr,
		Passes:           *passes,
		TrialsPerPattern: 1,
		Words:            *words,
		Crafter:          craft,
	}, rand.New(rand.NewPCG(*seed, 0xE)))
	if err != nil {
		fail(err)
	}
	fmt.Printf("BEEP success rate: %d/%d words profiled exactly (%.0f%%)\n",
		res.Successes, len(res.Rates), 100*res.SuccessRate())
	fmt.Printf("(codeword %d bits, %d injected errors, P[error]=%.2f, %d pass(es))\n",
		*n, *errorCells, *perr, *passes)
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "beep: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "beep:", err)
	os.Exit(1)
}

func runDemo(ctx context.Context, n, errorCells int, perr float64, passes int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 0xD))
	k := n
	for r := 2; ; r++ {
		if (1<<uint(r))-1 == n {
			k = n - r
			break
		}
		if (1<<uint(r))-1 > n {
			fmt.Fprintln(os.Stderr, "beep: -n must be 2^r - 1 (31, 63, 127, 255)")
			os.Exit(2)
		}
	}
	code := ecc.RandomHamming(k, rng)
	cells := rng.Perm(code.N())[:errorCells]
	fmt.Printf("codeword: (%d,%d) SEC Hamming; hidden error-prone cells: %v\n", code.N(), code.K(), cells)
	word := &beep.SimWord{Code: code, ErrorCells: cells, PErr: perr, Rng: rng}
	prof := beep.NewProfiler(code, beep.Options{
		Passes:             passes,
		TrialsPerPattern:   1,
		WorstCaseNeighbors: true,
	}, rng)
	out, err := prof.Run(ctx, word)
	if err != nil {
		fail(err)
	}
	fmt.Printf("patterns tested: %d (skipped targets: %d)\n", out.PatternsTested, out.SkippedBits)
	fmt.Printf("miscorrections observed and inverted via Equation 4: %d\n", out.Miscorrections)
	fmt.Printf("identified error-prone cells: %v\n", out.Identified)
	missed := 0
	idSet := map[int]bool{}
	for _, c := range out.Identified {
		idSet[c] = true
	}
	for _, c := range cells {
		if !idSet[c] {
			missed++
		}
	}
	fmt.Printf("coverage: %d/%d injected cells found, %d false positives\n",
		len(cells)-missed, len(cells), len(out.Identified)-(len(cells)-missed))
}
