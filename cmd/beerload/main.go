// Command beerload is the load generator behind beerd's serving benchmarks:
// it drives a mixed recovery workload (exact, noisy and planned jobs over a
// pool of distinct miscorrection profiles, with a configurable
// duplicate-profile ratio for cache-hit realism) against a standalone or
// clustered beerd, consumes each job's lifecycle over SSE or status polls,
// records client-observed submit-to-terminal latency in an HDR histogram
// (internal/obs), and emits jobs/sec + p50/p95/p99 in the same BENCH JSON
// document the kernel benchmarks use, so tools/benchjson -compare can gate
// serving regressions exactly like ns/op regressions.
//
// Usage:
//
//	beerload                                   # self-hosted: ephemeral in-process beerd
//	beerload -target http://host:8080          # drive a running beerd (any role)
//	beerload -duration 30s -concurrency 16     # closed loop: 16 in-flight jobs
//	beerload -rate 50                          # open loop: 50 submissions/sec
//	beerload -dup 0.85 -mix exact=8,noisy=1,planned=1 -sse 0.25
//	beerload -json BENCH_serve.json -label BenchmarkServeMixedCacheHeavy
//
// The default knobs are the cache-heavy mixed workload the CI serve-bench
// job runs: small chips (k=8), minimal window sweep, 85% duplicate
// submissions — the regime where request-path costs (status serialization,
// store decodes, lock contention) dominate over solver time.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of a running beerd (empty = self-hosted ephemeral server)")
		duration    = flag.Duration("duration", 20*time.Second, "how long to generate load")
		warmup      = flag.Duration("warmup", 0, "load to run before measurement starts (not recorded)")
		concurrency = flag.Int("concurrency", 8, "closed-loop worker count (ignored when -rate > 0)")
		rate        = flag.Float64("rate", 0, "open-loop submissions/sec (0 = closed loop)")
		maxInflight = flag.Int("max-inflight", 256, "open-loop cap on concurrent jobs; submissions beyond it are shed")
		dup         = flag.Float64("dup", 0.85, "fraction of submissions reusing an already-submitted spec (cache/dedupe hits)")
		mix         = flag.String("mix", "exact=8,noisy=1,planned=1", "workload class weights")
		sse         = flag.Float64("sse", 0.25, "fraction of consumers streaming SSE instead of polling")
		poll        = flag.Duration("poll", 10*time.Millisecond, "status poll interval for polling consumers")
		k           = flag.Int("k", 8, "dataword bits for generated recovery jobs (multiple of 8)")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		engineW     = flag.Int("workers", 0, "self-hosted engine worker-pool width (0 = all cores)")
		label       = flag.String("label", "BenchmarkServeMixedCacheHeavy", "benchmark name in the emitted BENCH JSON")
		jsonPath    = flag.String("json", "", "write the BENCH JSON document here (empty = stdout)")
	)
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beerload:", err)
		os.Exit(2)
	}

	base := *target
	var shutdown func()
	if base == "" {
		base, shutdown, err = selfHost(*engineW)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beerload:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "beerload: self-hosted beerd on %s\n", base)
	}

	// One pooled keep-alive transport for the whole run: the generator must
	// not re-handshake per request, or it measures its own dialer instead of
	// the server. Bodies are always drained before close (see consume/getJSON)
	// so connections actually return to the pool.
	client := &http.Client{
		Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			MaxIdleConns:        4 * (*concurrency + 8),
			MaxIdleConnsPerHost: 4 * (*concurrency + 8),
			IdleConnTimeout:     90 * time.Second,
		},
	}

	gen := newWorkload(weights, *k, *dup, rand.New(rand.NewSource(*seed)))
	run := &runner{
		base:   strings.TrimRight(base, "/"),
		client: client,
		gen:    gen,
		sse:    *sse,
		poll:   *poll,
		hist:   obs.NewHDR(),
	}

	if *warmup > 0 {
		fmt.Fprintf(os.Stderr, "beerload: warming up for %v\n", *warmup)
		wctx, cancel := context.WithTimeout(context.Background(), *warmup)
		run.drive(wctx, *concurrency, *rate, *maxInflight)
		cancel()
		run.reset()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	run.drive(ctx, *concurrency, *rate, *maxInflight)
	elapsed := time.Since(start)

	completed := run.completed.Load()
	failed := run.failed.Load()
	shed := run.shed.Load()
	jobsPerSec := float64(completed) / elapsed.Seconds()
	h := run.hist

	fmt.Fprintf(os.Stderr,
		"beerload: %d jobs in %v (%.1f jobs/sec), %d failed, %d shed\n"+
			"beerload: latency ms p50=%.2f p95=%.2f p99=%.2f max=%.2f (dup target %.0f%%, observed %.0f%%)\n",
		completed, elapsed.Round(time.Millisecond), jobsPerSec, failed, shed,
		ms(h.Quantile(0.50)), ms(h.Quantile(0.95)), ms(h.Quantile(0.99)), ms(h.Max()),
		100**dup, 100*gen.observedDupRatio())

	if completed == 0 {
		fmt.Fprintln(os.Stderr, "beerload: no jobs completed — not writing a baseline")
		os.Exit(1)
	}

	doc := baseline{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
		Benchmarks: []benchmark{{
			Package:    "repro/cmd/beerload",
			Name:       *label,
			Iterations: completed,
			NsPerOp:    float64(h.Mean()) * 1e3, // histogram is in µs
			Extra: map[string]float64{
				"jobs/sec": round2(jobsPerSec),
				"p50-ms":   round2(ms(h.Quantile(0.50))),
				"p95-ms":   round2(ms(h.Quantile(0.95))),
				"p99-ms":   round2(ms(h.Quantile(0.99))),
			},
		}},
	}
	out := os.Stdout
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beerload:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "beerload:", err)
		os.Exit(1)
	}
	if failed > 0 && failed*10 > completed {
		fmt.Fprintln(os.Stderr, "beerload: more than 10% of jobs failed — treating the run as invalid")
		os.Exit(1)
	}
}

// baseline/benchmark mirror tools/benchjson's wire format so the emitted
// document feeds `benchjson -compare` directly.
type baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

func ms(us int64) float64 { return float64(us) / 1e3 }
func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// cpuModel best-effort reads the host CPU name for the baseline header.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// parseMix parses "exact=8,noisy=1,planned=1" into class weights.
func parseMix(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "exact", "noisy", "planned":
		default:
			return nil, fmt.Errorf("unknown -mix class %q (want exact, noisy or planned)", name)
		}
		out[name] = w
	}
	total := 0
	for _, w := range out {
		total += w
	}
	if total == 0 {
		return nil, errors.New("-mix has zero total weight")
	}
	return out, nil
}

// jobSpec is the subset of the beerd submission body the generator uses.
type jobSpec struct {
	Type             string  `json:"type"`
	Manufacturer     string  `json:"manufacturer,omitempty"`
	K                int     `json:"k,omitempty"`
	Patterns         string  `json:"patterns,omitempty"`
	Rounds           int     `json:"rounds,omitempty"`
	MaxWindowMinutes int     `json:"max_window_minutes,omitempty"`
	UseAntiRows      bool    `json:"use_anti_rows,omitempty"`
	Plan             bool    `json:"plan,omitempty"`
	NoiseFP          float64 `json:"noise_fp,omitempty"`
	NoiseSeed        uint64  `json:"noise_seed,omitempty"`
}

// workload draws the next spec to submit: with probability dup an
// already-submitted spec (a cache/dedupe hit by construction), otherwise the
// next entry of a fixed pool of distinct-profile specs. The pool varies
// manufacturer, pattern set and anti-cell rows — the inputs the analytic
// profile actually depends on — per class:
//
//   - exact:   3 manufacturers × 2 pattern sets × ±anti rows (12 profiles)
//   - noisy:   3 manufacturers × 2 pattern sets, perturbed observations (6)
//   - planned: 3 manufacturers, adaptive pattern planner (3)
//
// Duplicate draws are Zipf-distributed over the specs submitted so far:
// real duplicate traffic concentrates on a hot set (that skew is the entire
// reason caches and single-flight dedupe pay off), so a uniform draw would
// understate both the baseline's wasted work and the optimized path's
// benefit. All jobs use minimal collection knobs (rounds=1, 4-minute window
// cap) so the workload stresses the request path rather than the simulator.
type workload struct {
	mu       sync.Mutex
	rng      *rand.Rand
	dup      float64
	pool     []jobSpec
	next     int
	distinct []jobSpec // unique specs submitted so far, first-use order
	seen     map[jobSpec]bool
	zipf     *rand.Zipf
	fresh    int64
	reused   int64
}

func newWorkload(weights map[string]int, k int, dup float64, rng *rand.Rand) *workload {
	var pool []jobSpec
	addClass := func(class string, weight int) {
		if weight == 0 {
			return
		}
		var variants []jobSpec
		for _, mfr := range []string{"A", "B", "C"} {
			switch class {
			case "exact":
				for _, patterns := range []string{"1", "12"} {
					for _, anti := range []bool{false, true} {
						variants = append(variants, jobSpec{
							Type: "recover", Manufacturer: mfr, K: k, Patterns: patterns,
							Rounds: 1, MaxWindowMinutes: 4, UseAntiRows: anti,
						})
					}
				}
			case "noisy":
				for _, patterns := range []string{"1", "12"} {
					variants = append(variants, jobSpec{
						Type: "recover", Manufacturer: mfr, K: k, Patterns: patterns,
						Rounds: 1, MaxWindowMinutes: 4, NoiseFP: 0.01, NoiseSeed: 1,
					})
				}
			case "planned":
				variants = append(variants, jobSpec{
					Type: "recover", Manufacturer: mfr, K: k, Patterns: "12",
					Rounds: 1, MaxWindowMinutes: 4, Plan: true,
				})
			}
		}
		// Interleave proportionally to the weight: the pool is consumed
		// round-robin, so repeating a class's variants weight times keeps
		// the submitted mix near the requested ratio even on short runs.
		for i := 0; i < weight; i++ {
			pool = append(pool, variants...)
		}
	}
	addClass("exact", weights["exact"])
	addClass("noisy", weights["noisy"])
	addClass("planned", weights["planned"])
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return &workload{rng: rng, dup: dup, pool: pool, seen: map[jobSpec]bool{}}
}

func (w *workload) nextSpec() jobSpec {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.distinct) > 0 && w.rng.Float64() < w.dup {
		w.reused++
		return w.distinct[w.zipf.Uint64()]
	}
	spec := w.pool[w.next%len(w.pool)]
	w.next++
	w.fresh++
	if !w.seen[spec] {
		w.seen[spec] = true
		w.distinct = append(w.distinct, spec)
		// Rank the hot set by first use: spec i is drawn with
		// P ∝ 1/(i+1)^1.5 once it has been submitted at least once.
		w.zipf = rand.NewZipf(w.rng, 1.5, 1, uint64(len(w.distinct)-1))
	}
	return spec
}

func (w *workload) observedDupRatio() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.fresh + w.reused
	if total == 0 {
		return 0
	}
	return float64(w.reused) / float64(total)
}

// runner drives one benchmark phase and accumulates its results.
type runner struct {
	base   string
	client *http.Client
	gen    *workload
	sse    float64
	poll   time.Duration

	hist      *obs.HDR
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	consumerN atomic.Int64
}

func (r *runner) reset() {
	r.hist = obs.NewHDR()
	r.completed.Store(0)
	r.failed.Store(0)
	r.shed.Store(0)
}

// drive generates load until ctx expires: closed-loop workers when rate is
// zero, otherwise an open-loop submission ticker capped at maxInflight.
func (r *runner) drive(ctx context.Context, concurrency int, rate float64, maxInflight int) {
	var wg sync.WaitGroup
	if rate <= 0 {
		for i := 0; i < max(concurrency, 1); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					r.one(ctx)
				}
			}()
		}
		wg.Wait()
		return
	}
	sem := make(chan struct{}, max(maxInflight, 1))
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			select {
			case sem <- struct{}{}:
			default:
				r.shed.Add(1)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				r.one(ctx)
			}()
		}
	}
}

// one runs a single submit→consume→result cycle and records its latency.
func (r *runner) one(ctx context.Context) {
	spec := r.gen.nextSpec()
	useSSE := float64(r.consumerN.Add(1)%1000)/1000 < r.sse
	start := time.Now()
	id, err := r.submit(ctx, spec)
	if err != nil {
		if ctx.Err() == nil {
			r.failed.Add(1)
		}
		return
	}
	if useSSE {
		err = r.consumeSSE(ctx, id)
	} else {
		err = r.consumePoll(ctx, id)
	}
	if err == nil {
		err = r.fetchResult(ctx, id)
	}
	if err != nil {
		if ctx.Err() == nil {
			r.failed.Add(1)
		}
		return
	}
	r.hist.Record(time.Since(start).Microseconds())
	r.completed.Add(1)
}

// submit POSTs the spec, retrying briefly on 429/503 backpressure, and
// returns the job ID.
func (r *runner) submit(ctx context.Context, spec jobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/api/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			return "", err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return "", err
			}
			return st.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retry := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					retry = time.Duration(secs) * time.Second
				}
			}
			drain(resp)
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(retry):
			}
		default:
			msg, _ := bufio.NewReader(resp.Body).ReadString('\n')
			drain(resp)
			return "", fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(msg))
		}
	}
}

// consumePoll polls the status endpoint until the job is terminal.
func (r *runner) consumePoll(ctx context.Context, id string) error {
	for {
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := r.getJSON(ctx, "/api/v1/jobs/"+id, &st); err != nil {
			return err
		}
		switch st.State {
		case "succeeded":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.poll):
		}
	}
}

// consumeSSE streams /events until the server sends the terminal `done`
// event.
func (r *runner) consumeSSE(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if event != "done" {
				continue
			}
			var st struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data:")), &st); err != nil {
				return err
			}
			if st.State != "succeeded" {
				return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
			}
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("job %s: event stream ended before done", id)
}

// fetchResult downloads and discards the result body — part of the cost a
// real consumer pays.
func (r *runner) fetchResult(ctx context.Context, id string) error {
	var res json.RawMessage
	return r.getJSON(ctx, "/api/v1/jobs/"+id+"/result", &res)
}

func (r *runner) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// drain empties and closes a response body so the keep-alive connection
// returns to the transport's pool.
func drain(resp *http.Response) {
	_, _ = bufio.NewReader(resp.Body).WriteTo(discard{})
	resp.Body.Close()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// selfHost boots an ephemeral in-process beerd on a loopback port — the
// `beerload` analogue of `beerd -selfcheck` — and returns its base URL plus
// a shutdown func.
func selfHost(workers int) (string, func(), error) {
	srv := service.New(repro.NewEngine(workers),
		service.WithStore(store.New(store.NewMemBackend())),
		service.WithObservability(obs.NewHub(nil)))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "beerload: self-hosted server:", err)
		}
	}()
	shutdown := func() {
		httpSrv.Close()
		srv.Close()
		srv.Store().Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
