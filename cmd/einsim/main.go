// Command einsim runs word-level Monte-Carlo ECC simulations, mirroring the
// role of the EINSim tool the paper uses for its simulation studies.
//
// Usage:
//
//	einsim -k 32 -rber 1e-4 -words 1000000 -pattern 0xFF -model uniform
//	einsim -k 128 -rber 1e-3 -model retention -family sequential
//	einsim -code recovered.json -rber 1e-4   # simulate a BEER-recovered function
//
// -code loads a function from the shared code wire format
// (internal/store.CodeExport) — the file `beer -o` writes and beerd's
// GET /codes serves — closing the paper's loop: recover a chip's secret ECC
// function, then study its post-correction error characteristics in
// simulation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/parallel"
	"repro/internal/store"
)

func main() {
	var (
		k        = flag.Int("k", 32, "dataword length in bits")
		rber     = flag.Float64("rber", 1e-4, "raw (pre-correction) bit error rate")
		words    = flag.Int("words", 100000, "number of ECC words to simulate")
		pattern  = flag.String("pattern", "0xFF", "data pattern: 0xFF, 0x00 or RANDOM")
		model    = flag.String("model", "uniform", "error model: uniform, retention or perbit")
		hotBits  = flag.String("hot-bits", "", "perbit model: comma-separated bit:rate overrides on the -rber base, e.g. 0:0.01,5:0.3")
		family   = flag.String("family", "sequential", "code family: sequential, bitreversed or random")
		codeFile = flag.String("code", "", "code-export JSON file to simulate (overrides -family/-k; see beer -o)")
		seed     = flag.Uint64("seed", 1, "random seed")
		minErr   = flag.Int("min-errors", 0, "condition sampling on at least this many errors per word")
		workers  = flag.Int("workers", 0, "worker-pool width for sharded simulation (0 = all cores)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var code *ecc.Code
	if *codeFile != "" {
		f, err := os.Open(*codeFile)
		if err != nil {
			fatal(err)
		}
		exp, err := store.ReadExport(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if code, err = exp.Code(); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s from %s\n", exp.UID, *codeFile)
	} else {
		switch *family {
		case "sequential":
			code = ecc.SequentialHamming(*k)
		case "bitreversed":
			code = ecc.BitReversedHamming(*k)
		case "random":
			code = ecc.RandomHamming(*k, rand.New(rand.NewPCG(*seed, 2)))
		default:
			fatal(fmt.Errorf("unknown code family %q", *family))
		}
	}
	cfg := einsim.Config{
		Code:               code,
		RBER:               *rber,
		Words:              *words,
		ConditionMinErrors: *minErr,
	}
	switch *pattern {
	case "0xFF":
		cfg.Pattern = einsim.PatternAllOnes
	case "0x00":
		cfg.Pattern = einsim.PatternAllZeros
	case "RANDOM":
		cfg.Pattern = einsim.PatternRandom
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}
	switch *model {
	case "uniform":
		cfg.Model = einsim.ModelUniform
	case "retention":
		cfg.Model = einsim.ModelRetention
	case "perbit":
		// HARP-style per-bit Bernoulli rates: -rber everywhere, except the
		// -hot-bits overrides.
		cfg.Model = einsim.ModelPerBitBernoulli
		cfg.BitFailProb = make([]float64, cfg.Code.N())
		for i := range cfg.BitFailProb {
			cfg.BitFailProb[i] = cfg.RBER
		}
		if *hotBits != "" {
			for _, part := range strings.Split(*hotBits, ",") {
				bitStr, rateStr, ok := strings.Cut(part, ":")
				if !ok {
					fatal(fmt.Errorf("bad -hot-bits entry %q: want bit:rate", part))
				}
				bit, err := strconv.Atoi(bitStr)
				if err != nil || bit < 0 || bit >= cfg.Code.N() {
					fatal(fmt.Errorf("bad -hot-bits bit %q (code has n=%d)", bitStr, cfg.Code.N()))
				}
				rate, err := strconv.ParseFloat(rateStr, 64)
				if err != nil {
					fatal(fmt.Errorf("bad -hot-bits rate %q: %v", rateStr, err))
				}
				cfg.BitFailProb[bit] = rate
			}
		}
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	// The engine shards the word budget across the pool with per-shard
	// seeded RNGs, so the output is identical for any -workers value.
	res, err := parallel.New(*workers).Simulate(ctx, cfg, *seed)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "einsim: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Printf("simulated %d words of %s, pattern %s, model %s, RBER %g (%d shards)\n",
		res.Words, code, cfg.Pattern, cfg.Model, *rber, parallel.SimShards(cfg.Words))
	fmt.Printf("outcomes: %d correctable, %d silent, %d partial, %d miscorrected, %d words with post-correction errors\n",
		res.Correctable, res.Silent, res.Partial, res.Miscorrected, res.WordsWithPostError)
	fmt.Println("\nbit  pre-share  post-share")
	pre := res.RelativePreProbabilities()
	post := res.RelativePostProbabilities()
	for b := 0; b < res.K; b++ {
		fmt.Printf("%-4d %-10.4f %-10.4f\n", b, pre[b], post[b])
	}
	for b := res.K; b < res.N; b++ {
		fmt.Printf("%-4d %-10.4f (parity)\n", b, pre[b])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "einsim:", err)
	os.Exit(1)
}
