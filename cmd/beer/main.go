// Command beer runs the complete BEER methodology against a simulated DRAM
// chip with on-die ECC and prints the recovered ECC function, optionally
// checking it against the simulation's ground truth.
//
// Usage:
//
//	beer -mfr B -k 16 -verify
//	beer -mfr C -k 32 -patterns 1 -max-rows 128
//	beer -mfr B -k 16 -chips 4 -verify     # parallel collection across 4 same-model chips
//	beer -mfr B -k 16 -plan -verify        # adaptive planner: stop collecting when unique
//	beer -mfr B -k 16 -progress            # live per-stage status on stderr
//	beer -mfr B -k 16 -noise fp=0.002 -verify  # corrupt the profile, recover with drop-k + confidence
//	beer -mfr B -k 16 -noise fp=0.001,fn=0.01 -max-drop 16 -verify
//	beer -mfr B -k 16 -solver "kissat -q" -verify       # every solve shells out to kissat
//	beer -mfr B -k 16 -portfolio 3 -solver "cadical -q" # race 3 seeded CDCL engines vs. cadical
//
// -noise also accepts the HARP observation-model presets pbem25..pbem100
// (per-bit true-positive dropout of 75%..0%); the aggressive presets
// corrupt far more entries than the drop budget can absorb on a single
// profile, which is the point — they demonstrate the honest clean-UNSAT
// failure mode rather than a silent wrong answer.
//
//	beer -mfr B -k 16 -o code.json         # export the recovered function (einsim -code reads it)
//
// The -o export uses the shared code wire format (internal/store.CodeExport,
// the same JSON beerd's GET /codes serves), stamped with the miscorrection
// profile's canonical hash so the file can be matched against a BEER
// database entry.
//
// The run is cancellable: Ctrl-C stops collection at the next pass boundary
// and interrupts an in-flight SAT solve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/ondie"
	"repro/internal/store"
)

func main() {
	var (
		mfr      = flag.String("mfr", "A", "simulated manufacturer: A, B or C")
		k        = flag.Int("k", 16, "dataword length in bits (multiple of 8)")
		rows     = flag.Int("rows", 0, "chip rows (0 = automatic)")
		seed     = flag.Uint64("seed", 1, "chip seed")
		chips    = flag.Int("chips", 1, "number of same-model chips to collect from in parallel (paper sec. 6.3)")
		workers  = flag.Int("workers", 0, "worker-pool width (0 = all cores)")
		patterns = flag.String("patterns", "12", "pattern family: 1 (1-CHARGED) or 12 ({1,2}-CHARGED)")
		rounds   = flag.Int("rounds", 3, "collection rounds over the window sweep")
		maxWin   = flag.Int("max-window", 48, "largest refresh window in minutes")
		verify   = flag.Bool("verify", false, "compare against the simulated chip's ground truth")
		showProf = flag.Bool("profile", false, "print the thresholded miscorrection profile")
		useAnti  = flag.Bool("anti", false, "also collect inverted patterns from anti-cell rows (extension)")
		useLazy  = flag.Bool("lazy", false, "use the CEGAR-style lazy solver (extension)")
		usePlan  = flag.Bool("plan", false, "adaptive pattern planner: solve while collecting, stop when unique (extension)")
		planMax  = flag.Int("plan-budget", 0, "planner pattern budget (0 = the full family; implies -plan)")
		progress = flag.Bool("progress", false, "stream live pipeline progress to stderr")
		outFile  = flag.String("o", "", "write the recovered function as a code-export JSON file")
		noiseArg = flag.String("noise", "", "perturb the observed profile with an observation-error model: pbem25|pbem50|pbem75|pbem100 or fp=X,fn=Y (extension)")
		noiseSd  = flag.Uint64("noise-seed", 1, "noise-model perturbation seed")
		maxDrop  = flag.Int("max-drop", -1, "drop-k budget for noise-tolerant solving (0 = none, negative = unlimited); implies the noisy solver when -noise is set")
		solver   = flag.String("solver", "", `external DIMACS solver argv, e.g. "kissat -q" or "beersat" (extension)`)
		solverTO = flag.Duration("solver-timeout", 2*time.Minute, "wall-clock budget per external solver invocation; a timed-out run is killed and discarded")
		portN    = flag.Int("portfolio", 0, "race N differently-seeded in-process CDCL engines (plus -solver, if set) per solve; first answer wins (extension)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	chipRows := *rows
	if chipRows == 0 {
		chipRows = 192
		if ondie.Manufacturer(*mfr) == ondie.MfrC {
			chipRows = 384
		}
	}
	if *chips < 1 {
		fatal(fmt.Errorf("-chips must be at least 1"))
	}
	// Same-model chips share the ECC function but have independent cells
	// (distinct seeds); the engine collects from all of them concurrently and
	// merges the observation counts before one solve.
	fleet := make([]repro.Chip, *chips)
	for i := range fleet {
		chip, err := ondie.New(ondie.Config{
			Manufacturer:  ondie.Manufacturer(*mfr),
			DataBits:      *k,
			Banks:         1,
			Rows:          chipRows,
			RegionsPerRow: 16,
			Seed:          *seed + uint64(i),
		})
		if err != nil {
			fatal(err)
		}
		fleet[i] = chip
	}
	chip := fleet[0].(*ondie.Chip)

	opts := []repro.Option{
		repro.WithWorkers(*workers),
		repro.WithWindowSweep(*maxWin),
		repro.WithRounds(*rounds),
	}
	switch *patterns {
	case "1":
		opts = append(opts, repro.WithPatternSet(repro.Set1))
	case "12":
		opts = append(opts, repro.WithPatternSet(repro.Set12))
	default:
		fatal(fmt.Errorf("unknown pattern family %q", *patterns))
	}
	if *useAnti {
		opts = append(opts, repro.WithAntiRows())
	}
	if *useLazy {
		opts = append(opts, repro.WithLazySolver())
	}
	if *usePlan || *planMax > 0 {
		if *useAnti {
			fatal(fmt.Errorf("-plan is incompatible with -anti (the planner schedules true-cell patterns only)"))
		}
		opts = append(opts, repro.WithPlanOptions(repro.PlanOptions{MaxPatterns: *planMax}))
	}
	if *noiseArg != "" {
		if *usePlan || *planMax > 0 {
			fatal(fmt.Errorf("-noise is incompatible with -plan (the planner path does not perturb profiles)"))
		}
		model, err := parseNoise(*noiseArg, *noiseSd)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, repro.WithNoiseModel(model), repro.WithMaxDrop(*maxDrop))
	}
	if *progress {
		opts = append(opts, repro.WithProgress(printProgress))
	}
	if backend, err := solverBackendOption(*solver, *solverTO, *portN); err != nil {
		fatal(err)
	} else if backend != nil {
		opts = append(opts, backend)
	}
	pipe := repro.NewPipeline(opts...)

	fmt.Printf("BEER: %d manufacturer-%s chip(s), k=%d, %d rows, %s patterns\n",
		*chips, *mfr, *k, chipRows, pipe.RecoverOptions().PatternSet)
	fmt.Printf("analytical experiment runtime on real hardware: %v (refresh pauses dominate; chips run in parallel, paper sec. 6.3)\n\n",
		core.ExperimentRuntime(pipe.RecoverOptions().Collect))

	start := time.Now()
	rep, err := pipe.Recover(ctx, fleet...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "beer: interrupted, partial results discarded")
			os.Exit(130)
		}
		fatal(err)
	}
	trueRows := len(core.TrueRows(rep.CellClasses))
	fmt.Printf("step 1a (cell layout):   %d/%d rows are true-cells\n", trueRows, chipRows)
	fmt.Printf("step 1b (word layout):   %d words per %dB region, k=%d discovered\n",
		len(rep.Layout.Words), rep.Layout.RegionBytes, rep.K)
	fmt.Printf("step 2  (profile):       %d patterns observed over %d word-reads\n",
		len(rep.Counts.Entries), totalWords(rep.Counts))
	if *showProf {
		fmt.Println(rep.Profile)
	}
	fmt.Printf("step 3  (SAT solve):     determine %v, uniqueness %v, %d vars, %d clauses\n",
		rep.Result.DetermineTime.Round(time.Millisecond),
		rep.Result.UniquenessTime.Round(time.Millisecond),
		rep.Result.Vars, rep.Result.Clauses)
	if *useLazy {
		fmt.Printf("        (lazy solver materialized %d deferred pattern entries)\n", rep.Result.LazyRefinements)
	}
	if rep.Plan != nil {
		fmt.Printf("planner:                 %d of %d patterns collected in %d batches (decided early: %v)\n",
			rep.Plan.PatternsUsed, rep.Plan.PatternsFull, rep.Plan.Batches, rep.Plan.DecidedEarly)
	}
	if ni := rep.Result.Noise; ni != nil {
		fmt.Printf("noise:                   retained %d/%d profile entries (dropped %v), confidence %.3f, support margin %.3f\n",
			ni.Retained, ni.Total, ni.DroppedEntries, ni.Confidence, ni.Margin)
	}
	fmt.Printf("simulation wall clock:   %v\n\n", time.Since(start).Round(time.Millisecond))

	switch {
	case len(rep.Result.Codes) == 0:
		fmt.Println("RESULT: no ECC function matches the profile (noisy data?)")
		os.Exit(1)
	case rep.Result.Unique:
		fmt.Println("RESULT: unique ECC function recovered; parity-check matrix H = [P | I]:")
	default:
		fmt.Printf("RESULT: %d candidate ECC functions (first shown); add 2-CHARGED patterns to disambiguate:\n",
			len(rep.Result.Codes))
	}
	fmt.Println(rep.Result.Codes[0].H())

	if *outFile != "" {
		exp := store.ExportCode(rep.Result.Codes[0])
		exp.ProfileHash = rep.Profile.Hash()
		unique := rep.Result.Unique
		exp.Unique = &unique
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		if err := store.WriteExport(f, exp); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (uid %s, profile %.12s...)\n", *outFile, exp.UID, exp.ProfileHash)
	}

	if *verify {
		truth := chip.GroundTruthCode()
		if rep.Result.Codes[0].EquivalentTo(truth) {
			fmt.Println("\nVERIFY: matches the chip's secret ECC function (up to parity relabeling)")
		} else {
			fmt.Println("\nVERIFY: MISMATCH against ground truth")
			os.Exit(1)
		}
	}
}

// printProgress renders one pipeline event as a live status line on stderr.
func printProgress(ev repro.ProgressEvent) {
	switch {
	case ev.Stage == repro.StageCollect && !ev.Done:
		fmt.Fprintf(os.Stderr, "[chip %d] collect: round %d/%d window %v (pass %d/%d)\n",
			ev.Chip, ev.Round, ev.Rounds, ev.Window, ev.Pass, ev.Passes)
	case ev.Stage == repro.StageSolve && !ev.Done:
		fmt.Fprintf(os.Stderr, "solve: %d candidate(s) so far\n", ev.Candidates)
	case ev.Done:
		fmt.Fprintf(os.Stderr, "[chip %d] %s: done\n", ev.Chip, ev.Stage)
	default:
		fmt.Fprintf(os.Stderr, "[chip %d] %s: started\n", ev.Chip, ev.Stage)
	}
}

// solverBackendOption turns the -solver/-solver-timeout/-portfolio flags
// into a pipeline option, or nil when neither flag asks for a non-default
// backend. Binaries are validated up front (repro.NewExternalBackend /
// NewPortfolioBackend) so a typo'd solver name fails at startup rather
// than silently degrading to the in-process engine mid-run.
func solverBackendOption(argv string, timeout time.Duration, portfolio int) (repro.Option, error) {
	var externals []repro.ExternalSolverConfig
	if argv != "" {
		fields := strings.Fields(argv)
		externals = append(externals, repro.ExternalSolverConfig{
			Argv:    fields,
			Timeout: timeout,
		})
	}
	switch {
	case portfolio > 0:
		factory, err := repro.NewPortfolioBackend(portfolio, externals...)
		if err != nil {
			return nil, fmt.Errorf("-portfolio: %w", err)
		}
		return repro.WithSolverBackend(factory), nil
	case len(externals) == 1:
		factory, err := repro.NewExternalBackend(externals[0])
		if err != nil {
			return nil, fmt.Errorf("-solver: %w", err)
		}
		return repro.WithSolverBackend(factory), nil
	}
	return nil, nil
}

// parseNoise turns the -noise argument into a model: a HARP PBEM preset
// name or explicit fp=X,fn=Y rates.
func parseNoise(s string, seed uint64) (repro.NoiseModel, error) {
	var m repro.NoiseModel
	switch s {
	case "pbem25":
		m = noise.PBEM25
	case "pbem50":
		m = noise.PBEM50
	case "pbem75":
		m = noise.PBEM75
	case "pbem100":
		m = noise.PBEM100
	default:
		for _, part := range strings.Split(s, ",") {
			key, val, ok := strings.Cut(part, "=")
			if !ok {
				return m, fmt.Errorf("bad -noise %q: want a pbemNN preset or fp=X,fn=Y", s)
			}
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return m, fmt.Errorf("bad -noise rate %q: %v", part, err)
			}
			switch key {
			case "fp":
				m.FP = rate
			case "fn":
				m.FN = rate
			default:
				return m, fmt.Errorf("bad -noise key %q: want fp or fn", key)
			}
		}
	}
	m.Seed = seed
	return m, m.Validate()
}

func totalWords(c *core.Counts) int64 {
	var n int64
	for _, e := range c.Entries {
		n += e.Words
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beer:", err)
	os.Exit(1)
}
