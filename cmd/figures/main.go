// Command figures regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	figures -list
//	figures -id fig5 -scale quick
//	figures -all -scale default
//
// Scales: quick (seconds), default (minutes), paper (closest feasible match
// to the paper's sweep sizes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/figures"
	"repro/internal/parallel"
)

func main() {
	var (
		id      = flag.String("id", "", "table/figure to regenerate (see -list)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		list    = flag.Bool("list", false, "list available tables and figures")
		scale   = flag.String("scale", "quick", "experiment scale: quick, default or paper")
		workers = flag.Int("workers", 0, "worker-pool width for experiment sweeps (0 = all cores)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workers > 0 {
		figures.SetEngine(parallel.New(*workers))
	}

	if *list {
		for _, g := range figures.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Description)
		}
		return
	}
	sc, err := figures.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	switch {
	case *all:
		for _, g := range figures.All() {
			fmt.Printf("=== %s (%s) ===\n", g.ID, g.Description)
			start := time.Now()
			if err := g.Run(ctx, os.Stdout, sc); err != nil {
				fatal(fmt.Errorf("%s: %w", g.ID, err))
			}
			fmt.Printf("--- %s done in %v ---\n\n", g.ID, time.Since(start).Round(time.Millisecond))
		}
	case *id != "":
		g, ok := figures.ByID(*id)
		if !ok {
			fatal(fmt.Errorf("unknown id %q; try -list", *id))
		}
		if err := g.Run(ctx, os.Stdout, sc); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "figures: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
