package repro_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/einsim"
)

// TestPipelineRecover runs the new functional-options API end to end and
// checks it agrees with the deprecated struct-options shim.
func TestPipelineRecover(t *testing.T) {
	var (
		mu     sync.Mutex
		events []repro.ProgressEvent
	)
	pipe := repro.NewPipeline(
		repro.WithFastWindows(),
		repro.WithWorkers(2),
		repro.WithProgress(func(ev repro.ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}),
	)
	chips := repro.SimulatedChips(repro.MfrB, 16, 2, 9)
	rep, err := pipe.Recover(context.Background(), chips...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Unique {
		t.Fatalf("expected unique recovery, got %d candidates", len(rep.Result.Codes))
	}
	if !rep.Result.Codes[0].EquivalentTo(repro.GroundTruth(repro.SimulatedChip(repro.MfrB, 16, 9))) {
		t.Fatal("pipeline recovered the wrong function")
	}

	// The deprecated shim must still produce an equivalent function.
	legacy, err := repro.RecoverECCFunction(repro.SimulatedChip(repro.MfrB, 16, 9), repro.FastRecovery())
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Result.Codes[0].EquivalentTo(rep.Result.Codes[0]) {
		t.Fatal("deprecated shim and pipeline disagree")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("WithProgress received no events")
	}
	chipSeen := map[int]bool{}
	var solveDone bool
	for _, ev := range events {
		if ev.Stage == repro.StageCollect && !ev.Done {
			chipSeen[ev.Chip] = true
		}
		if ev.Stage == repro.StageSolve && ev.Done {
			solveDone = true
		}
	}
	if !chipSeen[0] || !chipSeen[1] {
		t.Fatalf("progress events missing chips: %v", chipSeen)
	}
	if !solveDone {
		t.Fatal("no solve-done event")
	}
}

// TestPipelineRecoverCancel: cancelling the context mid-collection surfaces
// context.Canceled through the facade.
func TestPipelineRecoverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pipe := repro.NewPipeline(
		repro.WithFastWindows(),
		repro.WithRounds(10),
		repro.WithProgress(func(ev repro.ProgressEvent) {
			if ev.Stage == repro.StageCollect && ev.Pass >= 2 {
				cancel()
			}
		}),
	)
	_, err := pipe.Recover(ctx, repro.SimulatedChip(repro.MfrB, 16, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Recover returned %v, want context.Canceled", err)
	}
}

// TestPipelineOptions checks that options land in the effective
// configuration.
func TestPipelineOptions(t *testing.T) {
	pipe := repro.NewPipeline(
		repro.WithPatternSet(repro.Set1),
		repro.WithWindows(5*time.Minute, 10*time.Minute),
		repro.WithRounds(7),
		repro.WithTemperature(45),
		repro.WithMaxRows(12),
		repro.WithAntiRows(),
		repro.WithLazySolver(),
		repro.WithThreshold(1e-3, 5),
		repro.WithParityBits(6),
		repro.WithSolveBudget(1234),
		repro.WithMaxSolutions(9),
	)
	opts := pipe.RecoverOptions()
	if opts.PatternSet != repro.Set1 ||
		len(opts.Collect.Windows) != 2 ||
		opts.Collect.Rounds != 7 ||
		opts.Collect.TempC != 45 ||
		opts.MaxRows != 12 ||
		!opts.UseAntiRows ||
		!opts.UseLazySolver ||
		opts.ThresholdFraction != 1e-3 ||
		opts.ThresholdMinCount != 5 ||
		opts.Solve.ParityBits != 6 ||
		opts.Solve.MaxConflicts != 1234 ||
		opts.Solve.MaxSolutions != 9 {
		t.Fatalf("options not applied: %+v", opts)
	}

	// WithRecoverOptions replaces the configuration wholesale but keeps an
	// already-registered progress callback.
	called := false
	pipe = repro.NewPipeline(
		repro.WithProgress(func(repro.ProgressEvent) { called = true }),
		repro.WithRecoverOptions(repro.FastRecovery()),
	)
	got := pipe.RecoverOptions()
	if got.Collect.Rounds != 3 {
		t.Fatalf("WithRecoverOptions not applied: %+v", got.Collect)
	}
	if got.Progress == nil {
		t.Fatal("WithRecoverOptions dropped the progress callback")
	}
	got.Progress(repro.ProgressEvent{})
	if !called {
		t.Fatal("preserved progress callback is not the registered one")
	}
}

// TestPipelineSolveAndSimulate covers the remaining pipeline entry points.
func TestPipelineSolveAndSimulate(t *testing.T) {
	ctx := context.Background()
	code := repro.NewHammingCode(11, 7)
	pipe := repro.NewPipeline(repro.WithParityBits(code.ParityBits()), repro.WithWorkers(2))

	res, err := pipe.Solve(ctx, repro.ExactProfile(code, repro.OneChargedPatterns(11)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique || !res.Codes[0].EquivalentTo(code) {
		t.Fatal("pipeline solve failed")
	}

	sim, err := pipe.Simulate(ctx, einsim.Config{
		Code:    repro.Hamming74(),
		Pattern: einsim.PatternAllOnes,
		Model:   einsim.ModelUniform,
		RBER:    1e-2,
		Words:   20000,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Words != 20000 {
		t.Fatalf("simulated %d words", sim.Words)
	}

	word := repro.SimulatedWord(code, []int{1, 5}, 1.0, 4)
	out, err := pipe.ProfileWord(ctx, code, word, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Identified {
		if c != 1 && c != 5 {
			t.Fatalf("false positive cell %d", c)
		}
	}
}
