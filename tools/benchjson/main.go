// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout), so benchmark baselines can be stored,
// diffed and plotted without re-parsing the Go test format. CI runs it via
// `make bench-baseline`, which seeds the BENCH_*.json trajectory uploaded as
// a workflow artifact.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | go run ./tools/benchjson > BENCH_pr3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string  `json:"package,omitempty"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Extra collects any further "<value> <unit>" metric pairs (custom
	// b.ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the top-level output document.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var out Baseline
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if out.Benchmarks == nil {
		out.Benchmarks = []Benchmark{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  10  123 ns/op  4 B/op  1 allocs/op
// [value unit]...".
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = value
		case "B/op":
			b.BytesPerOp = value
		case "allocs/op":
			b.AllocsOp = value
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = value
		}
	}
	return b, true
}
