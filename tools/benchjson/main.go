// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout), so benchmark baselines can be stored,
// diffed and plotted without re-parsing the Go test format. CI runs it via
// `make bench-baseline`, which seeds the BENCH_*.json trajectory uploaded as
// a workflow artifact.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | go run ./tools/benchjson > BENCH_pr6.json
//
// With -compare, benchjson becomes the CI regression gate: it reads the
// committed baseline from the named file, reads the fresh run from stdin
// (either raw `go test -bench` text or an already-converted JSON document),
// prints per-benchmark deltas, and exits nonzero when any key benchmark
// regresses beyond the tolerance in ns/op or bytes/op:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | go run ./tools/benchjson -compare BENCH_pr6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string  `json:"package,omitempty"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Extra collects any further "<value> <unit>" metric pairs (custom
	// b.ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the top-level output document.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	comparePath := flag.String("compare", "", "baseline JSON file to gate the stdin run against")
	keys := flag.String("key", strings.Join(defaultKeys, ","), "comma-separated key benchmarks the gate enforces")
	tolerance := flag.Float64("tolerance", 0.30, "fractional ns/op and bytes/op regression allowed on key benchmarks")
	serveKeys := flag.String("serve-key", "", "comma-separated serving benchmarks gated direction-aware on their custom metrics (jobs/sec must not drop, p99-ms must not grow)")
	serveTolerance := flag.Float64("serve-tolerance", 0.50, "fractional move allowed on serving keys (down in jobs/sec, up in p99-ms)")
	pairGrace := flag.Float64("collect-pair-grace", 1.25, "max allowed ParallelCollect/SerialCollect ns ratio (slack for single-CPU hosts)")
	portGrace := flag.Float64("portfolio-pair-grace", 10.0, "max allowed SolveBackendPortfolio/SolveBackendCDCL ns ratio (0 disables)")
	flag.Parse()

	in, err := readBaseline(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *comparePath == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(in); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	raw, err := os.ReadFile(*comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var old Baseline
	if err := json.Unmarshal(raw, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *comparePath, err)
		os.Exit(1)
	}
	rep := compare(&old, in, compareOptions{
		Keys:           strings.Split(*keys, ","),
		Tolerance:      *tolerance,
		ServeKeys:      strings.Split(*serveKeys, ","),
		ServeTolerance: *serveTolerance,
		PairGrace:      *pairGrace,
		PortfolioGrace: *portGrace,
	})
	os.Stdout.WriteString(rep.Table)
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("bench gate: all key benchmarks within tolerance")
}

// readBaseline reads either raw `go test -bench` text or an existing JSON
// baseline (detected by a leading '{') and returns the parsed document.
func readBaseline(r io.Reader) (*Baseline, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		b, err := br.Peek(1)
		if err != nil {
			// Empty input parses as an empty text baseline.
			return parseBenchText(br)
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			br.Discard(1)
			continue
		}
		if b[0] == '{' {
			var out Baseline
			if err := json.NewDecoder(br).Decode(&out); err != nil {
				return nil, fmt.Errorf("parsing JSON baseline: %w", err)
			}
			return &out, nil
		}
		return parseBenchText(br)
	}
}

// parseBenchText parses `go test -bench` text output into a Baseline.
func parseBenchText(r io.Reader) (*Baseline, error) {
	var out Baseline
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if out.Benchmarks == nil {
		out.Benchmarks = []Benchmark{}
	}
	return &out, nil
}

// parseBenchLine parses "BenchmarkName-8  10  123 ns/op  4 B/op  1 allocs/op
// [value unit]...".
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = value
		case "B/op":
			b.BytesPerOp = value
		case "allocs/op":
			b.AllocsOp = value
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = value
		}
	}
	return b, true
}
