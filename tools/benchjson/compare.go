package main

import (
	"fmt"
	"sort"
	"strings"
)

// defaultKeys are the benchmarks the CI gate enforces: the figure sweeps the
// bitsliced core is meant to keep fast, the end-to-end recovery pipeline,
// the serial/parallel collection pair, the exact-vs-PBEM_75 noisy
// drop-k solve pair, the single-engine-vs-portfolio backend pair, and the
// metrics hot path (contended counter/histogram updates — the cost every
// instrumented solve pays). All run long enough at -benchtime 1x that a 30%
// ns/op move is a real regression, not scheduler noise, and bytes/op is
// deterministic for all of them (the portfolio entry included: loser
// cancellation lands at a conflict-check boundary, so its allocation
// profile repeats; the metrics entry does fixed work per iteration for the
// same reason).
var defaultKeys = []string{
	"BenchmarkFig8",
	"BenchmarkFig9",
	"BenchmarkRecoverEndToEnd",
	"BenchmarkSerialCollect",
	"BenchmarkParallelCollect",
	"BenchmarkNoisyRecoverExact",
	"BenchmarkNoisyRecoverPBEM75",
	"BenchmarkSolveBackendCDCL",
	"BenchmarkSolveBackendPortfolio",
	"BenchmarkMetricsHotPath",
}

type compareOptions struct {
	// Keys are the benchmark names (without the -GOMAXPROCS suffix) whose
	// regressions fail the gate. Other benchmarks are reported but advisory.
	Keys []string
	// Tolerance is the allowed fractional growth in ns/op and bytes/op for
	// key benchmarks (0.30 = fail beyond +30%).
	Tolerance float64
	// PairGrace bounds ParallelCollect ns/op at PairGrace * SerialCollect
	// ns/op when both appear in the new run. On multi-core hosts parallel
	// collection must win outright; the grace margin only exists so a
	// single-CPU runner (where the pool degenerates to serial plus overhead)
	// does not flake. Zero disables the check.
	PairGrace float64
	// ServeKeys are serving-path benchmarks (beerload's
	// BenchmarkServeMixedCacheHeavy) gated direction-aware on their custom
	// metrics instead of ns/op symmetrically: "jobs/sec" fails the gate when
	// it DROPS beyond ServeTolerance, "p99-ms" when it GROWS beyond it.
	// p50/p95 are reported but advisory — tail latency and throughput are
	// the serving SLOs.
	ServeKeys []string
	// ServeTolerance is the allowed fractional move on serving keys
	// (0.50 = fail below -50% jobs/sec or above +50% p99). Wider than
	// Tolerance because wall-clock throughput of a 25-second loaded run
	// varies more across CI hosts than single-benchmark ns/op.
	ServeTolerance float64
	// PortfolioGrace bounds SolveBackendPortfolio ns/op at PortfolioGrace *
	// SolveBackendCDCL ns/op within the new run. The ratio is
	// machine-independent (both legs run the same profile on the same host),
	// so it catches a portfolio that stops racing — losers no longer
	// cancelled, competitors serialized behind a lock — even when absolute
	// timings drift between baseline and CI hosts. The margin is wide
	// because honest racing of three engines on a starved runner legally
	// costs several times the single engine. Zero disables the check.
	PortfolioGrace float64
}

type compareReport struct {
	Table    string
	Failures []string
}

// benchKey strips the -GOMAXPROCS suffix go test appends on multi-core
// machines, so baselines from hosts with different core counts compare.
func benchKey(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if suffix := name[i+1:]; suffix != "" && strings.TrimLeft(suffix, "0123456789") == "" {
			return name[:i]
		}
	}
	return name
}

func pct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// compare diffs a fresh run against the committed baseline. Every benchmark
// present in both appears in the table; key benchmarks additionally gate.
func compare(old, new *Baseline, opts compareOptions) compareReport {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[benchKey(b.Name)] = b
	}
	newBy := make(map[string]Benchmark, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newBy[benchKey(b.Name)] = b
	}
	isKey := make(map[string]bool, len(opts.Keys))
	for _, k := range opts.Keys {
		if k = strings.TrimSpace(k); k != "" {
			isKey[k] = true
		}
	}

	var rep compareReport
	var sb strings.Builder
	names := make([]string, 0, len(newBy))
	for name := range newBy {
		if _, ok := oldBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "%-44s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "ΔB")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		mark := " "
		if isKey[name] {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s%-43s %14.0f %14.0f %9s %9s\n",
			mark, name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp), pct(o.BytesPerOp, n.BytesPerOp))
		if !isKey[name] {
			continue
		}
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+opts.Tolerance) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s ns/op regressed %s (%.0f -> %.0f, tolerance +%.0f%%)",
					name, pct(o.NsPerOp, n.NsPerOp), o.NsPerOp, n.NsPerOp, 100*opts.Tolerance))
		}
		if o.BytesPerOp > 0 && n.BytesPerOp > o.BytesPerOp*(1+opts.Tolerance) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s bytes/op regressed %s (%.0f -> %.0f, tolerance +%.0f%%)",
					name, pct(o.BytesPerOp, n.BytesPerOp), o.BytesPerOp, n.BytesPerOp, 100*opts.Tolerance))
		}
	}
	// A key benchmark that vanished from either side would make the gate
	// silently vacuous — treat it as a failure.
	for k := range isKey {
		if _, ok := newBy[k]; !ok {
			rep.Failures = append(rep.Failures, fmt.Sprintf("key benchmark %s missing from new run", k))
		}
		if _, ok := oldBy[k]; !ok {
			rep.Failures = append(rep.Failures, fmt.Sprintf("key benchmark %s missing from baseline", k))
		}
	}
	for _, k := range opts.ServeKeys {
		if k = strings.TrimSpace(k); k == "" {
			continue
		}
		o, okO := oldBy[k]
		n, okN := newBy[k]
		if !okO {
			rep.Failures = append(rep.Failures, fmt.Sprintf("serving key benchmark %s missing from baseline", k))
		}
		if !okN {
			rep.Failures = append(rep.Failures, fmt.Sprintf("serving key benchmark %s missing from new run", k))
		}
		if !okO || !okN {
			continue
		}
		oj, nj := o.Extra["jobs/sec"], n.Extra["jobs/sec"]
		o99, n99 := o.Extra["p99-ms"], n.Extra["p99-ms"]
		fmt.Fprintf(&sb, "serving %s: jobs/sec %.1f -> %.1f (%s), p50 %.1f -> %.1f ms, p99 %.1f -> %.1f ms (%s)\n",
			k, oj, nj, pct(oj, nj), o.Extra["p50-ms"], n.Extra["p50-ms"], o99, n99, pct(o99, n99))
		if oj > 0 && nj < oj*(1-opts.ServeTolerance) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s jobs/sec dropped %s (%.1f -> %.1f, tolerance -%.0f%%)",
					k, pct(oj, nj), oj, nj, 100*opts.ServeTolerance))
		}
		if o99 > 0 && n99 > o99*(1+opts.ServeTolerance) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s p99-ms regressed %s (%.1f -> %.1f, tolerance +%.0f%%)",
					k, pct(o99, n99), o99, n99, 100*opts.ServeTolerance))
		}
	}
	if opts.PairGrace > 0 {
		ser, okS := newBy["BenchmarkSerialCollect"]
		par, okP := newBy["BenchmarkParallelCollect"]
		if okS && okP && ser.NsPerOp > 0 {
			ratio := par.NsPerOp / ser.NsPerOp
			fmt.Fprintf(&sb, "collect pair: parallel/serial ns ratio %.2f (grace %.2f)\n", ratio, opts.PairGrace)
			if ratio > opts.PairGrace {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("BenchmarkParallelCollect is %.2fx SerialCollect (grace %.2fx): parallel collection stopped scaling",
						ratio, opts.PairGrace))
			}
		}
	}
	if opts.PortfolioGrace > 0 {
		cdcl, okC := newBy["BenchmarkSolveBackendCDCL"]
		port, okP := newBy["BenchmarkSolveBackendPortfolio"]
		if okC && okP && cdcl.NsPerOp > 0 {
			ratio := port.NsPerOp / cdcl.NsPerOp
			fmt.Fprintf(&sb, "backend pair: portfolio/cdcl ns ratio %.2f (grace %.2f)\n", ratio, opts.PortfolioGrace)
			if ratio > opts.PortfolioGrace {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("BenchmarkSolveBackendPortfolio is %.2fx SolveBackendCDCL (grace %.2fx): the portfolio stopped racing",
						ratio, opts.PortfolioGrace))
			}
		}
	}
	sort.Strings(rep.Failures)
	rep.Table = sb.String()
	return rep
}
