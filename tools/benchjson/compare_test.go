package main

import (
	"strings"
	"testing"
)

func bl(benches ...Benchmark) *Baseline { return &Baseline{Benchmarks: benches} }

func opts() compareOptions {
	return compareOptions{
		Keys:      []string{"BenchmarkFig8", "BenchmarkSerialCollect", "BenchmarkParallelCollect"},
		Tolerance: 0.30,
		PairGrace: 1.25,
	}
}

func TestBenchKeyStripsGomaxprocs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFig8":               "BenchmarkFig8",
		"BenchmarkFig8-8":             "BenchmarkFig8",
		"BenchmarkFig8-128":           "BenchmarkFig8",
		"BenchmarkSolve/k=8-4":        "BenchmarkSolve/k=8",
		"BenchmarkOne-Charged":        "BenchmarkOne-Charged", // non-numeric suffix kept
		"BenchmarkAblation/1-CHARGED": "BenchmarkAblation/1-CHARGED",
	}
	for in, want := range cases {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	old := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, BytesPerOp: 100},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500, BytesPerOp: 50},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400, BytesPerOp: 50},
	)
	new := bl(
		Benchmark{Name: "BenchmarkFig8-8", NsPerOp: 1200, BytesPerOp: 120}, // +20%, inside 30%
		Benchmark{Name: "BenchmarkSerialCollect-8", NsPerOp: 500, BytesPerOp: 50},
		Benchmark{Name: "BenchmarkParallelCollect-8", NsPerOp: 450, BytesPerOp: 50},
	)
	rep := compare(old, new, opts())
	if len(rep.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", rep.Failures)
	}
	if !strings.Contains(rep.Table, "BenchmarkFig8") {
		t.Fatal("delta table missing BenchmarkFig8 row")
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	old := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, BytesPerOp: 100},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
	)
	new := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1400, BytesPerOp: 100}, // +40%
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
	)
	rep := compare(old, new, opts())
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "ns/op regressed") {
		t.Fatalf("want one ns/op failure, got %v", rep.Failures)
	}
}

func TestCompareBytesRegressionFails(t *testing.T) {
	old := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, BytesPerOp: 100},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
	)
	new := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, BytesPerOp: 140}, // +40% bytes
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
	)
	rep := compare(old, new, opts())
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "bytes/op regressed") {
		t.Fatalf("want one bytes/op failure, got %v", rep.Failures)
	}
}

func TestCompareNonKeyRegressionAdvisory(t *testing.T) {
	o := opts()
	old := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
		Benchmark{Name: "BenchmarkOther", NsPerOp: 100},
	)
	new := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
		Benchmark{Name: "BenchmarkOther", NsPerOp: 900}, // 9x, but not a key
	)
	rep := compare(old, new, o)
	if len(rep.Failures) != 0 {
		t.Fatalf("non-key regression must be advisory, got %v", rep.Failures)
	}
	if !strings.Contains(rep.Table, "BenchmarkOther") {
		t.Fatal("non-key benchmark missing from delta table")
	}
}

func TestCompareMissingKeyFails(t *testing.T) {
	old := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
	)
	new := bl(
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 400},
	)
	rep := compare(old, new, opts())
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "missing from new run") {
		t.Fatalf("want missing-key failure, got %v", rep.Failures)
	}
}

func TestCompareCollectPairGate(t *testing.T) {
	old := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 650},
	)
	new := bl(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkSerialCollect", NsPerOp: 500},
		// 1.4x serial trips the pair gate, but +7.7% over its own baseline
		// stays inside the per-benchmark tolerance.
		Benchmark{Name: "BenchmarkParallelCollect", NsPerOp: 700},
	)
	rep := compare(old, new, opts())
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "stopped scaling") {
		t.Fatalf("want collect-pair failure, got %v", rep.Failures)
	}
	// Within grace (single-CPU tie) passes.
	new.Benchmarks[2].NsPerOp = 600 // 1.2x serial, inside 1.25 grace
	if rep := compare(old, new, opts()); len(rep.Failures) != 0 {
		t.Fatalf("in-grace pair flagged: %v", rep.Failures)
	}
}

func serveBench(name string, jobsSec, p99 float64) Benchmark {
	return Benchmark{Name: name, NsPerOp: 1e9 / jobsSec,
		Extra: map[string]float64{"jobs/sec": jobsSec, "p50-ms": p99 / 4, "p95-ms": p99 / 2, "p99-ms": p99}}
}

func TestCompareServeKeysDirectionAware(t *testing.T) {
	o := compareOptions{ServeKeys: []string{"BenchmarkServeMixedCacheHeavy"}, ServeTolerance: 0.5}
	old := bl(serveBench("BenchmarkServeMixedCacheHeavy", 300, 200))

	// Faster throughput and fatter ns/op-irrelevant latency inside tolerance: pass.
	rep := compare(old, bl(serveBench("BenchmarkServeMixedCacheHeavy", 400, 250)), o)
	if len(rep.Failures) != 0 {
		t.Fatalf("improvement flagged: %v", rep.Failures)
	}
	if !strings.Contains(rep.Table, "serving BenchmarkServeMixedCacheHeavy") {
		t.Fatal("serving delta line missing from table")
	}

	// Throughput drop beyond 50% fails; the direction matters — ns/op of a
	// fixed-duration run is not gated symmetrically.
	rep = compare(old, bl(serveBench("BenchmarkServeMixedCacheHeavy", 120, 200)), o)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "jobs/sec dropped") {
		t.Fatalf("want jobs/sec failure, got %v", rep.Failures)
	}

	// p99 growth beyond 50% fails even with throughput held.
	rep = compare(old, bl(serveBench("BenchmarkServeMixedCacheHeavy", 300, 350)), o)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "p99-ms regressed") {
		t.Fatalf("want p99 failure, got %v", rep.Failures)
	}

	// A vanished serving key makes the gate vacuous — fail loudly.
	rep = compare(old, bl(), o)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "missing from new run") {
		t.Fatalf("want missing serving-key failure, got %v", rep.Failures)
	}
}

func TestReadBaselineDetectsJSON(t *testing.T) {
	jsonDoc := `{"benchmarks":[{"name":"BenchmarkFig8","iterations":1,"ns_per_op":123}]}`
	b, err := readBaseline(strings.NewReader(jsonDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 1 || b.Benchmarks[0].NsPerOp != 123 {
		t.Fatalf("JSON baseline misparsed: %+v", b)
	}
	text := "goos: linux\npkg: repro\nBenchmarkFig8 \t 1 \t 456 ns/op \t 7 B/op\n"
	b, err = readBaseline(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if b.Goos != "linux" || len(b.Benchmarks) != 1 || b.Benchmarks[0].NsPerOp != 456 || b.Benchmarks[0].BytesPerOp != 7 {
		t.Fatalf("text baseline misparsed: %+v", b)
	}
}
