# Local dev and CI run the exact same commands: .github/workflows/ci.yml
# invokes these targets' command lines verbatim.

GO ?= go

.PHONY: all build test lint bench fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

fmt:
	gofmt -w .
