# Local dev and CI run the exact same commands: .github/workflows/ci.yml
# invokes these targets' command lines verbatim.

GO ?= go

.PHONY: all build test lint bench bench-baseline fuzz-smoke fmt serve-smoke cluster-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-shot benchmark sweep parsed into a JSON baseline (tools/benchjson).
# CI uploads BENCH_pr5.json as an artifact, extending the bench trajectory
# (now including the Eager-vs-Incremental solve pairs and the
# FullSweep-vs-Planner end-to-end recovery pair).
# Two steps (not a pipe) so a bench compile failure fails the target instead
# of silently writing an empty baseline.
bench-baseline:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > bench.out
	$(GO) run ./tools/benchjson < bench.out > BENCH_pr5.json
	@rm -f bench.out
	@echo "wrote BENCH_pr5.json"

# Short coverage-guided fuzz smoke of the SAT solver core and the CNF
# builder (differential-tested against brute force; seed corpus committed
# under internal/sat/testdata/fuzz). CI runs the same two commands.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSolver -fuzztime 15s ./internal/sat
	$(GO) test -run '^$$' -fuzz FuzzCNFBuilder -fuzztime 15s ./internal/sat

# Boot an ephemeral beerd, submit 8 concurrent FastRecovery jobs against
# simulated MfrB chips, assert monotonic per-stage progress and that every
# recovered H matches ground truth (see internal/service/smoke.go).
serve-smoke:
	$(GO) run ./cmd/beerd -selfcheck -selfcheck-jobs 8

# Spin up a real local cluster — this process as coordinator plus two
# spawned beerd worker processes — submit 8 distinct-profile recovery jobs
# with one worker SIGKILLed mid-run (failover must be observed), then
# resubmit the same profiles and require zero additional SAT solver
# invocations (see internal/cluster/smoke.go).
cluster-smoke:
	$(GO) run ./cmd/beerd -clustercheck -clustercheck-jobs 8

fmt:
	gofmt -w .
