# Local dev and CI run the exact same commands: .github/workflows/ci.yml
# invokes these targets' command lines verbatim.

GO ?= go

.PHONY: all build test lint bench bench-baseline fmt serve-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-shot benchmark sweep parsed into a JSON baseline (tools/benchjson).
# CI uploads BENCH_pr3.json as an artifact, seeding the bench trajectory.
# Two steps (not a pipe) so a bench compile failure fails the target instead
# of silently writing an empty baseline.
bench-baseline:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > bench.out
	$(GO) run ./tools/benchjson < bench.out > BENCH_pr3.json
	@rm -f bench.out
	@echo "wrote BENCH_pr3.json"

# Boot an ephemeral beerd, submit 8 concurrent FastRecovery jobs against
# simulated MfrB chips, assert monotonic per-stage progress and that every
# recovered H matches ground truth (see internal/service/smoke.go).
serve-smoke:
	$(GO) run ./cmd/beerd -selfcheck -selfcheck-jobs 8

fmt:
	gofmt -w .
