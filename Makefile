# Local dev and CI run the exact same commands: .github/workflows/ci.yml
# invokes these targets' command lines verbatim.

GO ?= go

# Tag naming the committed benchmark baseline (BENCH_$(BENCH_TAG).json).
# Bump once per PR that re-baselines; bench-gate compares fresh runs against
# the file this expands to, so bench jobs no longer need per-PR edits.
BENCH_TAG ?= pr6

.PHONY: all build test lint bench bench-baseline bench-gate serve-bench serve-bench-gate fuzz-smoke fmt serve-smoke cluster-smoke solver-regression

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-shot benchmark sweep parsed into a JSON baseline (tools/benchjson).
# CI uploads BENCH_$(BENCH_TAG).json as an artifact, extending the bench
# trajectory (now including the bitsliced Fig8/Fig9 sweeps and the
# serial-vs-parallel collect pair).
# Two steps (not a pipe) so a bench compile failure fails the target instead
# of silently writing an empty baseline.
bench-baseline:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > bench.out
	$(GO) run ./tools/benchjson < bench.out > BENCH_$(BENCH_TAG).json
	@rm -f bench.out
	@echo "wrote BENCH_$(BENCH_TAG).json"

# Regression gate: rerun the sweep and diff it against the committed baseline.
# Exits nonzero when a key benchmark (Fig8/Fig9, end-to-end recovery, the
# collect pair, the exact-vs-PBEM_75 noisy solve pair) regresses >30% in
# ns/op or bytes/op, or when parallel collection falls more than 25% behind
# serial. CI runs this on every PR.
bench-gate:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > bench.out
	$(GO) run ./tools/benchjson -compare BENCH_$(BENCH_TAG).json < bench.out
	@rm -f bench.out

# Serving-path benchmark: beerload boots an in-process beerd and drives the
# mixed cache-heavy workload (85% duplicate profiles, 25% SSE watchers, the
# configuration committed in BENCH_pr10.json), writing the HDR latency
# summary as a benchjson document.
serve-bench:
	$(GO) run ./cmd/beerload -duration 25s -concurrency 16 -dup 0.85 -sse 0.25 -poll 10ms -k 8 -seed 1 -json serve-bench.json
	@echo "wrote serve-bench.json"

# Serving regression gate: rerun the mixed workload and diff it against the
# committed BENCH_pr10.json, direction-aware — jobs/sec failing on a drop,
# p99 latency failing on growth (ns/op of a fixed-duration loaded run is not
# a symmetric metric). Tolerance is wide (50%) because loaded-run throughput
# varies across CI hosts far more than microbenchmark ns/op.
serve-bench-gate:
	$(GO) run ./cmd/beerload -duration 25s -concurrency 16 -dup 0.85 -sse 0.25 -poll 10ms -k 8 -seed 1 -json serve-bench.json
	$(GO) run ./tools/benchjson -compare BENCH_pr10.json -key '' -serve-key BenchmarkServeMixedCacheHeavy -serve-tolerance 0.5 < serve-bench.json
	@rm -f serve-bench.json

# Short coverage-guided fuzz smoke of the SAT solver core, the CNF builder,
# the bitsliced-vs-scalar ECC differential, and the noisy drop-k solver's
# recovery-or-clean-UNSAT contract (seed corpora committed under
# internal/*/testdata/fuzz). CI runs the same four commands.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSolver -fuzztime 15s ./internal/sat
	$(GO) test -run '^$$' -fuzz FuzzCNFBuilder -fuzztime 15s ./internal/sat
	$(GO) test -run '^$$' -fuzz FuzzBitsliced -fuzztime 15s ./internal/ecc
	$(GO) test -run '^$$' -fuzz FuzzNoisyRecover -fuzztime 15s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzDimacsRoundTrip -fuzztime 15s ./internal/sat

# Graded SATLIB regression suite (internal/sat/satlib): the committed
# uf20/uf50/uuf50 + BEER-formula corpus solved under per-grade conflict
# budgets with checked-in pass thresholds (grading.json — the ratchet), plus
# the differential CDCL/portfolio/external backend agreement tests. External
# solvers (kissat, cadical) are exercised when installed and skipped
# cleanly otherwise; the test binary's own re-exec solver always runs.
solver-regression:
	$(GO) test -race -v -run 'TestSolverGraded|TestDifferentialBackends|TestPortfolioOnBeerFormulas|TestGradingRatchetSane|TestCorpusWellFormed' ./internal/sat/satlib

# Boot an ephemeral beerd, submit 8 concurrent FastRecovery jobs against
# simulated MfrB chips, assert monotonic per-stage progress and that every
# recovered H matches ground truth (see internal/service/smoke.go).
serve-smoke:
	$(GO) run ./cmd/beerd -selfcheck -selfcheck-jobs 8

# Spin up a real local cluster — this process as coordinator plus two
# spawned beerd worker processes — submit 8 distinct-profile recovery jobs
# with one worker SIGKILLed mid-run (failover must be observed), then
# resubmit the same profiles and require zero additional SAT solver
# invocations (see internal/cluster/smoke.go).
cluster-smoke:
	$(GO) run ./cmd/beerd -clustercheck -clustercheck-jobs 8

fmt:
	gofmt -w .
