// Rank-level baseline comparison (paper §4.1 vs §4.2): the pre-BEER way to
// determine an ECC function — direct syndrome extraction via bus fault
// injection (Cojocar et al.) — works for rank-level ECC but is impossible
// for on-die ECC. This example runs both methods on the same secret code and
// contrasts their capability requirements.
//
//	go run ./examples/rank_level_baseline
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/ranklevel"
)

func main() {
	secret := repro.NewHammingCode(26, 123) // (31,26) full-length SEC code
	fmt.Printf("secret ECC function: %s\n\n", secret)

	// --- Baseline: rank-level ECC with bus access and syndrome visibility.
	fmt.Println("baseline (paper 4.1): direct syndrome extraction")
	ctrl := ranklevel.New(secret, 8)
	direct, injections, err := ranklevel.DirectRecovery(ctrl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  hardware needed: bus fault injector + syndrome reporting\n")
	fmt.Printf("  %d one-hot injections -> H recovered bit-exactly: %v\n\n",
		injections, direct.Equal(secret))

	// --- BEER: no bus access, no syndromes, only retention errors.
	fmt.Println("BEER (paper 4.2+5): miscorrection-profile recovery")
	prof := repro.ExactProfile(secret, repro.OneChargedPatterns(secret.K()))
	pipe := repro.NewPipeline(repro.WithParityBits(secret.ParityBits()))
	res, err := pipe.Solve(context.Background(), prof)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Unique {
		log.Fatalf("expected unique recovery, got %d", len(res.Codes))
	}
	fmt.Printf("  hardware needed: none (refresh pause + data patterns only)\n")
	fmt.Printf("  %d 1-CHARGED patterns -> H recovered up to parity relabeling: %v\n\n",
		secret.K(), res.Codes[0].EquivalentTo(secret))

	// The two methods agree.
	if !direct.EquivalentTo(res.Codes[0]) {
		log.Fatal("baseline and BEER disagree")
	}
	fmt.Println("agreement: baseline and BEER recover the same ECC function.")
	fmt.Println()
	fmt.Println("why BEER matters: on-die ECC exposes neither the codeword (no bus")
	fmt.Println("carries the parity bits) nor the syndrome (no correction reporting),")
	fmt.Println("so the baseline cannot run at all — BEER is the only option.")
}
