// Quickstart: recover a simulated DRAM chip's secret on-die ECC function
// with BEER and verify it against the simulation's ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Two simulated manufacturer-B LPDDR4-like chips with 16-bit ECC
	// datawords. The chips' on-die ECC function is a trade secret: nothing on
	// the Chip interface reveals it. Same-model chips share the function
	// (paper §5.1.3), so the parallel engine collects miscorrection profiles
	// from both chips concurrently and merges the observations (§6.3).
	chips := repro.SimulatedChips(repro.MfrB, 16, 2, 1)

	// The Pipeline is the supported entry point: functional options
	// configure it, every run takes a context (cancel it to stop a
	// recovery within one collection round), and WithProgress streams
	// live stage/round events.
	pipe := repro.NewPipeline(
		repro.WithFastWindows(),
		repro.WithProgress(func(ev repro.ProgressEvent) {
			if ev.Done {
				fmt.Printf("  [progress] chip %d: %s done\n", ev.Chip, ev.Stage)
			}
		}),
	)

	start := time.Now()
	report, err := pipe.Recover(context.Background(), chips...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered dataword length: %d bits\n", report.K)
	fmt.Printf("recovery took %v (simulated experiment time: hours of refresh pauses)\n\n",
		time.Since(start).Round(time.Millisecond))

	if !report.Result.Unique {
		log.Fatalf("expected a unique ECC function, found %d candidates", len(report.Result.Codes))
	}
	code := report.Result.Codes[0]
	fmt.Printf("recovered ECC function: %s\n", code)
	fmt.Printf("parity-check matrix H = [P | I]:\n%s\n\n", code.H())

	// Only possible in simulation: compare with the hidden ground truth.
	if code.EquivalentTo(repro.GroundTruth(repro.SimulatedChip(repro.MfrB, 16, 1))) {
		fmt.Println("ground truth check: MATCH — BEER recovered the secret function.")
	} else {
		log.Fatal("ground truth check failed")
	}
}
