// Reverse-engineering walkthrough: the paper's full §5 methodology narrated
// step by step against chips from all three simulated manufacturers,
// mirroring the 80-chip study's workflow (cell layout -> dataword layout ->
// miscorrection profile -> SAT solve -> cross-chip comparison).
//
//	go run ./examples/reverse_engineer
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	pipe := repro.NewPipeline(repro.WithFastWindows())
	recovered := map[repro.Manufacturer]*repro.Code{}

	for _, m := range []repro.Manufacturer{repro.MfrA, repro.MfrB, repro.MfrC} {
		fmt.Printf("=== manufacturer %s ===\n", m)
		chip := repro.SimulatedChip(m, 16, 42)

		report, err := pipe.Recover(ctx, chip)
		if err != nil {
			log.Fatalf("manufacturer %s: %v", m, err)
		}

		// Step 1a (paper 5.1.1): true-/anti-cell layout from data-retention
		// asymmetry.
		trueRows, antiRows := 0, 0
		for _, bank := range report.CellClasses {
			for _, class := range bank {
				switch class.String() {
				case "true":
					trueRows++
				case "anti":
					antiRows++
				}
			}
		}
		fmt.Printf("step 1a: %d true-cell rows, %d anti-cell rows\n", trueRows, antiRows)

		// Step 1b (paper 5.1.2): dataword layout within the address space.
		fmt.Printf("step 1b: %d interleaved words per %dB region -> k = %d bits\n",
			len(report.Layout.Words), report.Layout.RegionBytes, report.K)

		// Step 2 (paper 5.1.3 + 5.2): miscorrection profile, thresholded.
		possible := 0
		for _, e := range report.Profile.Entries {
			possible += e.Possible.Weight()
		}
		fmt.Printf("step 2:  %d patterns tested, %d (pattern, bit) miscorrection pairs\n",
			len(report.Profile.Entries), possible)

		// Step 3 (paper 5.3): SAT solve + uniqueness check.
		if !report.Result.Unique {
			log.Fatalf("manufacturer %s: %d candidates; need more patterns", m, len(report.Result.Codes))
		}
		code := report.Result.Codes[0]
		recovered[m] = code
		fmt.Printf("step 3:  unique function found (%s) in %v determine + %v uniqueness\n",
			code, report.Result.DetermineTime.Round(1e6), report.Result.UniquenessTime.Round(1e6))

		if code.EquivalentTo(repro.GroundTruth(chip)) {
			fmt.Println("verify:  matches ground truth")
		} else {
			log.Fatalf("manufacturer %s: wrong function recovered", m)
		}

		// Same-model chips share the function (paper 5.1.3), which is what
		// makes BEER parallelize across chips (6.3): recover again from two
		// chips jointly — collections fan out over the engine's worker pool
		// and the merged counts must still solve to the same function.
		fleet := repro.SimulatedChips(m, 16, 2, 43)
		rep2, err := pipe.Recover(ctx, fleet...)
		if err != nil {
			log.Fatal(err)
		}
		if !rep2.Result.Unique || !rep2.Result.Codes[0].EquivalentTo(code) {
			log.Fatalf("manufacturer %s: same-model chips disagree", m)
		}
		fmt.Println("step 4:  two more same-model chips, collected in parallel, yield the same function")
		fmt.Println()
	}

	// Different manufacturers use different functions (paper 5.1.3).
	if recovered[repro.MfrA].EquivalentTo(recovered[repro.MfrB]) ||
		recovered[repro.MfrA].EquivalentTo(recovered[repro.MfrC]) ||
		recovered[repro.MfrB].EquivalentTo(recovered[repro.MfrC]) {
		log.Fatal("expected distinct functions across manufacturers")
	}
	fmt.Println("cross-manufacturer check: all three recovered functions are distinct,")
	fmt.Println("matching the paper's observation that vendors design their own ECC.")
}
