// Secondary-ECC co-design example (paper §7.2.1): once BEER reveals the
// on-die ECC function, a system architect can predict which data bits the
// on-die ECC makes most error-prone and design rank-level protection
// asymmetrically. This example computes the post-correction error
// distribution under the recovered function (Figure 1's insight applied) and
// ranks bits by exposure.
//
//	go run ./examples/secondary_ecc
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/einsim"
)

func main() {
	// Step 1: recover the chip's secret ECC function with BEER.
	ctx := context.Background()
	pipe := repro.NewPipeline(repro.WithFastWindows())
	chip := repro.SimulatedChip(repro.MfrC, 16, 5)
	report, err := pipe.Recover(ctx, chip)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Result.Unique {
		log.Fatalf("need a unique function, got %d candidates", len(report.Result.Codes))
	}
	code := report.Result.Codes[0]
	fmt.Printf("recovered on-die ECC: %s\n\n", code)

	// Step 2: with the function known, simulate the post-correction error
	// characteristics the memory controller will actually observe. The
	// 200k-word budget shards across every core via the parallel engine.
	res, err := pipe.Simulate(ctx, einsim.Config{
		Code:               code,
		Pattern:            einsim.PatternAllOnes,
		Model:              einsim.ModelUniform,
		RBER:               1e-4,
		Words:              200000,
		ConditionMinErrors: 2, // only uncorrectable words produce post-correction errors
	}, 17)
	if err != nil {
		log.Fatal(err)
	}

	type bitRisk struct {
		bit   int
		share float64
	}
	shares := res.RelativePostProbabilities()
	risks := make([]bitRisk, len(shares))
	for b, s := range shares {
		risks[b] = bitRisk{bit: b, share: s}
	}
	sort.Slice(risks, func(i, j int) bool { return risks[i].share > risks[j].share })

	fmt.Println("post-correction error exposure per data bit (descending):")
	fmt.Println("bit   share of observed errors")
	for _, r := range risks {
		bar := ""
		for i := 0; i < int(r.share*200); i++ {
			bar += "#"
		}
		fmt.Printf("%-5d %-8.4f %s\n", r.bit, r.share, bar)
	}

	// Step 3: the co-design decision. A uniform-random pre-correction error
	// model would put 1/k of the risk on every bit; the on-die ECC function
	// concentrates it. Rank-level ECC can place its strongest protection on
	// the top bits (e.g. via symbol interleaving), as Section 7.2.1 and the
	// CD-ECC line of work suggest.
	uniform := 1.0 / float64(len(shares))
	fmt.Printf("\nuniform share would be %.4f per bit;", uniform)
	fmt.Printf(" top bit %d carries %.1fx that exposure.\n", risks[0].bit, risks[0].share/uniform)
	fmt.Println("=> protect the top-ranked bits with the stronger rank-level ECC symbols.")
}
