// BEEP profiling example (paper §7.1): with the ECC function known (via
// BEER), reconstruct the bit-exact locations of error-prone cells in an ECC
// word — including cells in the parity bits, which no other profiler can
// see — purely from post-correction reads.
//
//	go run ./examples/beep_profiling
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

func main() {
	// A (63, 57) on-die-ECC-style code, as recovered by BEER.
	code := repro.NewHammingCode(57, 99)
	fmt.Printf("profiling a %s codeword\n", code)

	// The device under test: an ECC word with four weak cells, one of them
	// inside the inaccessible parity region. Each fails 80% of the time it
	// is left charged past its retention time.
	rng := rand.New(rand.NewPCG(7, 8))
	weak := []int{rng.IntN(code.K()), rng.IntN(code.K()), rng.IntN(code.K()), code.K() + rng.IntN(code.ParityBits())}
	word := repro.SimulatedWord(code, weak, 0.8, 11)
	fmt.Printf("hidden weak cells (ground truth): %v (cell %d is a parity cell)\n\n", weak, weak[3])

	pipe := repro.NewPipeline(repro.WithBEEPOptions(repro.BEEPOptions{
		Passes:             2,
		TrialsPerPattern:   2,
		WorstCaseNeighbors: true,
	}))
	out, err := pipe.ProfileWord(context.Background(), code, word, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BEEP tested %d crafted patterns and observed %d miscorrections\n",
		out.PatternsTested, out.Miscorrections)
	fmt.Printf("identified error-prone cells: %v\n", out.Identified)

	found := map[int]bool{}
	for _, c := range out.Identified {
		found[c] = true
	}
	hits := 0
	for _, c := range weak {
		if found[c] {
			hits++
		}
	}
	fmt.Printf("coverage: %d/%d weak cells identified, %d false positives\n",
		hits, len(weak), len(out.Identified)-hits)
	for _, c := range out.Identified {
		region := "data"
		if c >= code.K() {
			region = "parity (invisible to any direct read)"
		}
		fmt.Printf("  cell %3d: %s\n", c, region)
	}
	if hits < len(weak)-1 {
		log.Fatal("BEEP missed too many cells; try more passes")
	}
}
