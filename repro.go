// Package repro is the public API of a from-scratch Go reproduction of
// "Bit-Exact ECC Recovery (BEER): Determining DRAM On-Die ECC Functions by
// Exploiting DRAM Data Retention Characteristics" (Patel et al., MICRO 2020).
//
// The package is a facade over the implementation packages:
//
//   - internal/core:   BEER itself — miscorrection profiles and the SAT-based
//     recovery of the on-die ECC parity-check matrix.
//   - internal/beep:   BEEP — bit-exact pre-correction error profiling using
//     a recovered ECC function.
//   - internal/ecc:    systematic single-error-correcting Hamming codes.
//   - internal/ondie:  simulated LPDDR4-like chips with secret on-die ECC.
//   - internal/dram:   the raw DRAM retention-error substrate.
//   - internal/einsim: EINSim-style word-level Monte-Carlo simulation.
//
// # Quick start
//
//	chip := repro.SimulatedChip(repro.MfrB, 16, 1)
//	report, err := repro.RecoverECCFunction(chip, repro.FastRecovery())
//	if err != nil { ... }
//	fmt.Println(report.Result.Codes[0].H()) // the chip's secret ECC function
//
// See examples/ for complete programs and DESIGN.md for the experiment map.
package repro

import (
	"math/rand/v2"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/ondie"
	"repro/internal/parallel"
)

// Re-exported types. These aliases are the supported public names; the
// internal packages remain implementation detail.
type (
	// Code is a systematic (n, k) single-error-correcting linear block code
	// in standard form, the representation of an on-die ECC function.
	Code = ecc.Code
	// Chip is the system-visible interface of a DRAM chip with on-die ECC —
	// everything BEER is permitted to touch.
	Chip = core.Chip
	// Manufacturer selects one of the simulated DRAM vendors (A, B, C).
	Manufacturer = ondie.Manufacturer
	// Pattern is a k-CHARGED test pattern.
	Pattern = core.Pattern
	// Profile is a miscorrection profile: the ECC-function fingerprint BEER
	// solves from.
	Profile = core.Profile
	// RecoverOptions configures the end-to-end BEER pipeline.
	RecoverOptions = core.RecoverOptions
	// Report is the output of an end-to-end BEER run.
	Report = core.Report
	// SolveResult lists the code(s) consistent with a profile.
	SolveResult = core.Result
	// BEEPOptions configures BEEP profiling.
	BEEPOptions = beep.Options
	// BEEPOutcome reports BEEP's findings for one word.
	BEEPOutcome = beep.Outcome
	// Engine is the parallel experiment engine: it shards simulations and
	// profile collection across a worker pool with per-shard seeded RNGs
	// (results are bit-identical for any worker count) and caches exact
	// miscorrection profiles.
	Engine = parallel.Engine
)

// Simulated manufacturers, mirroring the three anonymized vendors of the
// paper's 80-chip study.
const (
	MfrA = ondie.MfrA
	MfrB = ondie.MfrB
	MfrC = ondie.MfrC
)

// NewHammingCode returns a uniformly random systematic SEC Hamming code with
// k data bits, seeded deterministically.
func NewHammingCode(k int, seed uint64) *Code {
	return ecc.RandomHamming(k, rand.New(rand.NewPCG(seed, 0x1234)))
}

// Hamming74 returns the paper's running-example (7,4) Hamming code (Eq. 1).
func Hamming74() *Code { return ecc.Hamming74() }

// SimulatedChip builds a simulated DRAM chip with on-die ECC for the given
// manufacturer and dataword length (k must be a multiple of 8). The chip's
// ECC function is hidden behind the Chip interface; use GroundTruth to
// compare after recovery.
func SimulatedChip(m Manufacturer, k int, seed uint64) *ondie.Chip {
	rows := 192
	if m == MfrC {
		rows = 384 // half the rows are anti-cells
	}
	return ondie.MustNew(ondie.Config{
		Manufacturer:  m,
		DataBits:      k,
		Banks:         1,
		Rows:          rows,
		RegionsPerRow: 16,
		Seed:          seed,
	})
}

// GroundTruth exposes a simulated chip's secret ECC function for validation.
// Real chips have no equivalent — that is the point of BEER.
func GroundTruth(chip *ondie.Chip) *Code { return chip.GroundTruthCode() }

// FastRecovery returns recovery options tuned for small simulated chips:
// refresh windows deep enough into the compressed retention distribution
// that thousands of words cover every possible miscorrection.
func FastRecovery() RecoverOptions {
	opts := core.DefaultRecoverOptions()
	opts.Collect.Windows = nil
	for m := 4; m <= 48; m += 4 {
		opts.Collect.Windows = append(opts.Collect.Windows, time.Duration(m)*time.Minute)
	}
	opts.Collect.Rounds = 3
	return opts
}

// RecoverECCFunction runs the complete BEER methodology (paper §5) against
// any Chip: discover the cell and dataword layouts, collect a miscorrection
// profile with crafted test patterns, filter it, and solve for the ECC
// function with a SAT solver, including the uniqueness check.
func RecoverECCFunction(chip Chip, opts RecoverOptions) (*Report, error) {
	return core.Recover(chip, opts)
}

// ExactProfile computes a known code's miscorrection profile analytically
// (no simulation) for the given pattern family — the oracle used by the
// paper's correctness evaluation (§6.1).
func ExactProfile(code *Code, patterns []Pattern) *Profile {
	return core.ExactProfile(code, patterns)
}

// OneChargedPatterns and TwoChargedPatterns generate the paper's test
// pattern families.
func OneChargedPatterns(k int) []Pattern { return core.OneCharged(k) }

// TwoChargedPatterns returns all 2-CHARGED patterns for k data bits.
func TwoChargedPatterns(k int) []Pattern { return core.TwoCharged(k) }

// SolveProfile searches for every ECC function consistent with a
// miscorrection profile (paper §5.3).
func SolveProfile(p *Profile, opts core.SolveOptions) (*SolveResult, error) {
	return core.Solve(p, opts)
}

// ProfileWord runs BEEP (paper §7.1) against one testable ECC word using a
// known (typically BEER-recovered) code, returning the bit-exact positions
// of the identified pre-correction error-prone cells.
func ProfileWord(code *Code, word beep.WordTester, opts BEEPOptions, seed uint64) *BEEPOutcome {
	prof := beep.NewProfiler(code, opts, rand.New(rand.NewPCG(seed, 0xBEEB)))
	return prof.Run(word)
}

// SimulatedWord builds a BEEP-testable ECC word with the given error-prone
// cells, each failing with probability pErr per test when charged.
func SimulatedWord(code *Code, errorCells []int, pErr float64, seed uint64) *beep.SimWord {
	return &beep.SimWord{
		Code:       code,
		ErrorCells: errorCells,
		PErr:       pErr,
		Rng:        rand.New(rand.NewPCG(seed, 0x5EED)),
	}
}

// Simulate runs an EINSim-style word-level Monte-Carlo experiment (used for
// the paper's Figure 1 and for secondary-ECC co-design studies, §7.2.1).
func Simulate(cfg einsim.Config, seed uint64) (*einsim.Result, error) {
	return einsim.Run(cfg, rand.New(rand.NewPCG(seed, 0x51E)))
}

// NewEngine builds a parallel experiment engine with the given worker-pool
// width (0 = all cores). DefaultEngine returns the shared process-wide one.
func NewEngine(workers int) *Engine { return parallel.New(workers) }

// DefaultEngine returns the shared parallel experiment engine.
func DefaultEngine() *Engine { return parallel.Default() }

// SimulateParallel is Simulate sharded across the default engine's worker
// pool: the word budget splits into fixed shards with per-shard seeded RNGs,
// so the result is bit-identical regardless of core count (but drawn from
// different streams than the serial Simulate).
func SimulateParallel(cfg einsim.Config, seed uint64) (*einsim.Result, error) {
	return parallel.Default().Simulate(cfg, seed)
}

// SimulatedChips builds n same-model chips (same manufacturer, same secret
// ECC function, independent cells) for parallel profile collection, mirroring
// the paper's §6.3 observation that BEER parallelizes across chips.
func SimulatedChips(m Manufacturer, k, n int, seed uint64) []Chip {
	chips := make([]Chip, n)
	for i := range chips {
		chips[i] = SimulatedChip(m, k, seed+uint64(i))
	}
	return chips
}

// RecoverECCFunctionParallel runs the complete BEER methodology against
// several chips of the same model on the default engine: discovery and
// profile collection fan out one-chip-per-worker, the observation counts
// merge (they simply add for same-model chips), and one SAT solve recovers
// the shared ECC function.
func RecoverECCFunctionParallel(chips []Chip, opts RecoverOptions) (*Report, error) {
	return parallel.Default().Recover(chips, opts)
}
