// Package repro is the public API of a from-scratch Go reproduction of
// "Bit-Exact ECC Recovery (BEER): Determining DRAM On-Die ECC Functions by
// Exploiting DRAM Data Retention Characteristics" (Patel et al., MICRO 2020).
//
// The package is a facade over the implementation packages:
//
//   - internal/core:   BEER itself — miscorrection profiles and the SAT-based
//     recovery of the on-die ECC parity-check matrix.
//   - internal/beep:   BEEP — bit-exact pre-correction error profiling using
//     a recovered ECC function.
//   - internal/ecc:    systematic single-error-correcting Hamming codes.
//   - internal/ondie:  simulated LPDDR4-like chips with secret on-die ECC.
//   - internal/dram:   the raw DRAM retention-error substrate.
//   - internal/einsim: EINSim-style word-level Monte-Carlo simulation.
//   - internal/parallel: the worker-pool experiment engine.
//   - internal/store:  the durable result store — a content-addressed
//     registry of recovered codes keyed by canonical profile hash (the
//     paper's §7 "BEER database") behind a pluggable backend interface.
//   - internal/service:  the beerd HTTP job service (cmd/beerd), with
//     persistent jobs and solver-result deduplication on top of the store.
//
// # Quick start
//
// The supported entry point is the context-aware Pipeline, configured with
// functional options:
//
//	chips := repro.SimulatedChips(repro.MfrB, 16, 2, 1)
//	pipe := repro.NewPipeline(repro.WithFastWindows())
//	report, err := pipe.Recover(ctx, chips...)
//	if err != nil { ... }
//	fmt.Println(report.Result.Codes[0].H()) // the chip's secret ECC function
//
// Cancelling ctx stops a run within one collection round; WithProgress
// streams stage/round/candidate events to the caller (the CLIs and the beerd
// job service consume them for live status).
//
// The pre-Pipeline one-shot helpers (RecoverECCFunction, SolveProfile,
// ProfileWord, Simulate, ...) remain as thin deprecated shims that run with
// context.Background(); see README.md for the migration table.
//
// See examples/ for complete programs and DESIGN.md for the experiment map.
package repro

import (
	"context"
	"math/rand/v2"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/noise"
	"repro/internal/ondie"
	"repro/internal/parallel"
	"repro/internal/sat"
)

// Re-exported types. These aliases are the supported public names; the
// internal packages remain implementation detail.
type (
	// Code is a systematic (n, k) single-error-correcting linear block code
	// in standard form, the representation of an on-die ECC function.
	Code = ecc.Code
	// Chip is the system-visible interface of a DRAM chip with on-die ECC —
	// everything BEER is permitted to touch.
	Chip = core.Chip
	// Manufacturer selects one of the simulated DRAM vendors (A, B, C).
	Manufacturer = ondie.Manufacturer
	// Pattern is a k-CHARGED test pattern.
	Pattern = core.Pattern
	// Profile is a miscorrection profile: the ECC-function fingerprint BEER
	// solves from.
	Profile = core.Profile
	// RecoverOptions is the legacy struct form of the pipeline
	// configuration; new code configures a Pipeline with functional options
	// instead (WithRecoverOptions accepts the struct form for migration).
	RecoverOptions = core.RecoverOptions
	// Report is the output of an end-to-end BEER run.
	Report = core.Report
	// SolveResult lists the code(s) consistent with a profile.
	SolveResult = core.Result
	// SolveCache short-circuits the solve stage for profiles whose canonical
	// hash (Profile.Hash) was solved before; install one with WithSolveCache.
	// internal/store provides the durable, content-addressed implementation.
	SolveCache = core.SolveCache
	// SolverBackend is the pluggable SAT engine behind recovery solves
	// (install a factory with WithSolverBackend): the in-process CDCL
	// solver by default, or a DIMACS-recording backend for export to
	// external solvers.
	SolverBackend = sat.Backend
	// PlanOptions tunes the adaptive pattern planner (WithPlanOptions).
	PlanOptions = core.PlanOptions
	// PlanInfo summarizes a planned recovery (Report.Plan): patterns used
	// vs. the full sweep, batch count, and whether the planner decided
	// early.
	PlanInfo = core.PlanInfo
	// NoiseModel is a per-bit Bernoulli observation-error model over
	// miscorrection profiles (HARP-style PBEM); install one with
	// WithNoiseModel to evaluate recovery under imperfect profiling.
	NoiseModel = noise.Model
	// NoisyOptions tunes the noise-tolerant drop-k solve path
	// (WithNoiseModel / WithMaxDrop).
	NoisyOptions = core.NoisyOptions
	// NoiseInfo reports a noisy recovery's drop-k outcome — retained vs
	// dropped entries, confidence, and support margin (SolveResult.Noise).
	NoiseInfo = core.NoiseInfo
	// BEEPOptions configures BEEP profiling.
	BEEPOptions = beep.Options
	// BEEPOutcome reports BEEP's findings for one word.
	BEEPOutcome = beep.Outcome
	// Engine is the parallel experiment engine: it shards simulations and
	// profile collection across a worker pool with per-shard seeded RNGs
	// (results are bit-identical for any worker count) and caches exact
	// miscorrection profiles.
	Engine = parallel.Engine
)

// Simulated manufacturers, mirroring the three anonymized vendors of the
// paper's 80-chip study.
const (
	MfrA = ondie.MfrA
	MfrB = ondie.MfrB
	MfrC = ondie.MfrC
)

// DimacsBackend is a recording SolverBackend that exports the accumulated
// CNF in DIMACS format (WriteDIMACS) while delegating solving to an inner
// backend; see NewDimacsBackend and WithSolverBackend.
type DimacsBackend = sat.Dimacs

// NewSolverBackend returns a fresh in-process CDCL SAT backend — what
// recovery solves use by default.
func NewSolverBackend() SolverBackend { return sat.New() }

// ExternalSolverConfig configures an external-process DIMACS solver
// backend (WithExternalSolver, WithPortfolioSolver, NewExternalBackend):
// the solver argv, a display name, the per-invocation wall-clock timeout
// after which the process is killed and its answer discarded, and the
// scratch directory for exported CNF files.
type ExternalSolverConfig = sat.ExternalConfig

// CompetitorStat is one portfolio competitor's cumulative win/loss/
// timeout/error record (SolveResult stats, progress events, /healthz).
type CompetitorStat = sat.CompetitorStat

// ErrSolverNotFound reports that an external solver binary could not be
// resolved on PATH. NewExternalBackend and NewPortfolioBackend surface it
// for up-front validation; WithExternalSolver and WithPortfolioSolver
// instead degrade silently to the in-process engine.
var ErrSolverNotFound = sat.ErrSolverNotFound

// NewExternalBackend validates an external solver configuration (the
// binary must resolve now) and returns a backend factory for
// WithSolverBackend. Unlike WithExternalSolver there is no silent
// fallback: a missing binary is an ErrSolverNotFound here.
func NewExternalBackend(cfg ExternalSolverConfig) (func() SolverBackend, error) {
	if _, err := sat.NewExternal(cfg); err != nil {
		return nil, err
	}
	return func() SolverBackend {
		ext, err := sat.NewExternal(cfg)
		if err != nil {
			return sat.New() // binary vanished since validation; degrade
		}
		return ext
	}, nil
}

// NewPortfolioBackend validates a portfolio configuration and returns a
// backend factory for WithSolverBackend: nCDCL in-process CDCL engines
// (minimum 1) racing the configured external solvers. External binaries
// that do not resolve are reported once here (ErrSolverNotFound) so
// callers can decide; use WithPortfolioSolver for the skip-silently
// behavior.
func NewPortfolioBackend(nCDCL int, externals ...ExternalSolverConfig) (func() SolverBackend, error) {
	for _, cfg := range externals {
		if _, err := sat.NewExternal(cfg); err != nil {
			return nil, err
		}
	}
	return func() SolverBackend {
		pf, err := sat.DefaultPortfolio(nCDCL, externals...)
		if err != nil {
			return sat.New()
		}
		return pf
	}, nil
}

// NewDimacsBackend returns a recording backend over the default in-process
// engine: solves behave identically, and the CNF every solve accumulated
// can be exported with WriteDIMACS for external SAT solvers.
func NewDimacsBackend() *DimacsBackend { return sat.NewDimacs(nil) }

// NewHammingCode returns a uniformly random systematic SEC Hamming code with
// k data bits, seeded deterministically.
func NewHammingCode(k int, seed uint64) *Code {
	return ecc.RandomHamming(k, rand.New(rand.NewPCG(seed, 0x1234)))
}

// Hamming74 returns the paper's running-example (7,4) Hamming code (Eq. 1).
func Hamming74() *Code { return ecc.Hamming74() }

// SimulatedChip builds a simulated DRAM chip with on-die ECC for the given
// manufacturer and dataword length (k must be a multiple of 8). The chip's
// ECC function is hidden behind the Chip interface; use GroundTruth to
// compare after recovery.
func SimulatedChip(m Manufacturer, k int, seed uint64) *ondie.Chip {
	rows := 192
	if m == MfrC {
		rows = 384 // half the rows are anti-cells
	}
	return ondie.MustNew(ondie.Config{
		Manufacturer:  m,
		DataBits:      k,
		Banks:         1,
		Rows:          rows,
		RegionsPerRow: 16,
		Seed:          seed,
	})
}

// SimulatedChips builds n same-model chips (same manufacturer, same secret
// ECC function, independent cells) for parallel profile collection, mirroring
// the paper's §6.3 observation that BEER parallelizes across chips.
func SimulatedChips(m Manufacturer, k, n int, seed uint64) []Chip {
	chips := make([]Chip, n)
	for i := range chips {
		chips[i] = SimulatedChip(m, k, seed+uint64(i))
	}
	return chips
}

// GroundTruth exposes a simulated chip's secret ECC function for validation.
// Real chips have no equivalent — that is the point of BEER.
func GroundTruth(chip *ondie.Chip) *Code { return chip.GroundTruthCode() }

// ExactProfile computes a known code's miscorrection profile analytically
// (no simulation) for the given pattern family — the oracle used by the
// paper's correctness evaluation (§6.1).
func ExactProfile(code *Code, patterns []Pattern) *Profile {
	return core.ExactProfile(code, patterns)
}

// OneChargedPatterns and TwoChargedPatterns generate the paper's test
// pattern families.
func OneChargedPatterns(k int) []Pattern { return core.OneCharged(k) }

// TwoChargedPatterns returns all 2-CHARGED patterns for k data bits.
func TwoChargedPatterns(k int) []Pattern { return core.TwoCharged(k) }

// SimulatedWord builds a BEEP-testable ECC word with the given error-prone
// cells, each failing with probability pErr per test when charged.
func SimulatedWord(code *Code, errorCells []int, pErr float64, seed uint64) *beep.SimWord {
	return &beep.SimWord{
		Code:       code,
		ErrorCells: errorCells,
		PErr:       pErr,
		Rng:        rand.New(rand.NewPCG(seed, 0x5EED)),
	}
}

// NewEngine builds a parallel experiment engine with the given worker-pool
// width (0 = all cores). DefaultEngine returns the shared process-wide one.
func NewEngine(workers int) *Engine { return parallel.New(workers) }

// DefaultEngine returns the shared parallel experiment engine.
func DefaultEngine() *Engine { return parallel.Default() }

// FastRecovery returns recovery options tuned for small simulated chips.
//
// Deprecated: Use NewPipeline(WithFastWindows()) — the Pipeline carries the
// same configuration plus a context and progress stream. FastRecovery
// remains for callers still on the struct-options shims.
func FastRecovery() RecoverOptions {
	opts := core.DefaultRecoverOptions()
	opts.Collect.Windows = sweepTo(48)
	opts.Collect.Rounds = 3
	return opts
}

// RecoverECCFunction runs the complete BEER methodology (paper §5) against
// any Chip with the legacy struct options.
//
// Deprecated: Use NewPipeline(WithRecoverOptions(opts)).Recover(ctx, chip)
// — it adds cancellation, progress reporting (WithProgress) and multi-chip
// fan-out. This shim runs with context.Background() (uncancellable).
func RecoverECCFunction(chip Chip, opts RecoverOptions) (*Report, error) {
	return core.Recover(context.Background(), chip, opts)
}

// RecoverECCFunctionParallel runs the complete BEER methodology against
// several chips of the same model on the default engine.
//
// Deprecated: Use NewPipeline(WithRecoverOptions(opts)).Recover(ctx,
// chips...). This shim runs with context.Background() (uncancellable).
func RecoverECCFunctionParallel(chips []Chip, opts RecoverOptions) (*Report, error) {
	return parallel.Default().Recover(context.Background(), chips, opts)
}

// SolveProfile searches for every ECC function consistent with a
// miscorrection profile (paper §5.3).
//
// Deprecated: Use NewPipeline(WithParityBits(opts.ParityBits),
// WithMaxSolutions(opts.MaxSolutions),
// WithSolveBudget(opts.MaxConflicts)).Solve(ctx, profile), which supports
// cancellation mid-search. This shim runs with context.Background().
func SolveProfile(p *Profile, opts core.SolveOptions) (*SolveResult, error) {
	return core.Solve(context.Background(), p, opts)
}

// ProfileWord runs BEEP (paper §7.1) against one testable ECC word using a
// known (typically BEER-recovered) code.
//
// Deprecated: Use NewPipeline(WithBEEPOptions(opts)).ProfileWord(ctx, code,
// word, seed). This shim runs with context.Background().
func ProfileWord(code *Code, word beep.WordTester, opts BEEPOptions, seed uint64) *BEEPOutcome {
	prof := beep.NewProfiler(code, opts, rand.New(rand.NewPCG(seed, 0xBEEB)))
	out, err := prof.Run(context.Background(), word)
	if err != nil {
		// Unreachable: Background() never cancels and Run has no other
		// error path.
		panic(err)
	}
	return out
}

// Simulate runs an EINSim-style word-level Monte-Carlo experiment serially
// (used for the paper's Figure 1 and secondary-ECC co-design studies,
// §7.2.1).
//
// Deprecated: Use NewPipeline().Simulate(ctx, cfg, seed). The Pipeline form
// shards across the engine's worker pool (bit-identical for any worker
// count, but drawn from different streams than this serial shim); keep the
// shim only where stream-exact compatibility with old serial results
// matters.
func Simulate(cfg einsim.Config, seed uint64) (*einsim.Result, error) {
	return einsim.Run(cfg, rand.New(rand.NewPCG(seed, 0x51E)))
}

// SimulateParallel is Simulate sharded across the default engine's worker
// pool.
//
// Deprecated: Use NewPipeline().Simulate(ctx, cfg, seed) — identical
// results, plus cancellation. This shim runs with context.Background().
func SimulateParallel(cfg einsim.Config, seed uint64) (*einsim.Result, error) {
	return parallel.Default().Simulate(context.Background(), cfg, seed)
}
