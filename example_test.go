package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// ExampleNewPipeline recovers the paper's running-example (7,4) Hamming code
// (Eq. 1) from its miscorrection profile: the profile is computed with the
// analytic oracle (no simulated chip needed), and the pipeline's solver
// finds every consistent ECC function, proving uniqueness. This is the solve
// stage of the full methodology; Pipeline.Recover runs the same thing after
// collecting the profile from a chip.
func ExampleNewPipeline() {
	code := repro.Hamming74()
	patterns := append(repro.OneChargedPatterns(4), repro.TwoChargedPatterns(4)...)
	profile := repro.ExactProfile(code, patterns)

	pipe := repro.NewPipeline(repro.WithMaxSolutions(-1))
	result, err := pipe.Solve(context.Background(), profile)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("unique:", result.Unique)
	fmt.Println("candidates:", len(result.Codes))
	// The solver returns the canonical representative of the code's
	// equivalence class; compare up to parity-row relabeling.
	fmt.Println("matches ground truth:", result.Codes[0].EquivalentTo(code))
	// Output:
	// unique: true
	// candidates: 1
	// matches ground truth: true
}
